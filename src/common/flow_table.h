// Dense per-flow state table: O(1) array lookup on per-packet paths with
// deterministic (key-ordered) iteration for control-plane sweeps.
//
// The per-packet hot paths used to reach flow state through det::OrderedMap
// (a red-black tree: O(log n) pointer-chasing, one cache miss per level —
// at 2^20 flows that is ~20 dependent misses per lookup) or through
// std::unordered_map (hashing plus a bucket probe, and O(n log n) sorted
// snapshots on every deterministic sweep). FlowTable replaces both with a
// paged slot directory plus a chunked slab:
//
//   directory  pages_[id >> 12][id & 4095] -> slot + 1   (0 = absent)
//   slab       chunks_[slot >> 10][slot & 1023] -> T     (addresses stable)
//
// Lookup is two dependent array indexes with no hashing and no comparisons.
// Slots are recycled through a LIFO free list, so steady-state insert/erase
// churn never allocates; values are reset to T{} on erase so held resources
// (rings, maps, buffers) release immediately.
//
// Determinism: iteration (for_each / for_each_desc) walks the directory in
// id order, never in slot or insertion order, so it is a pure function of
// the *key set* — exactly the det::OrderedMap contract the report and
// credit paths were written against (DESIGN.md "Determinism rules").
// An insertion-order index is kept alongside (insertion_order()) for
// harness-style "replay construction order" consumers and for tests that
// pin the slab layout itself.
//
// Mutation during iteration follows det::for_sorted's rules: the callback
// may erase entries (including its own — the walk has already moved past
// it) but must not insert; an insert could land ahead of the cursor on one
// run and behind it on another machine-independent-looking refactor.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace ceio {

template <typename T>
class FlowTable {
 public:
  using FlowId = std::uint64_t;

  FlowTable() = default;
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  FlowTable(FlowTable&&) = default;
  FlowTable& operator=(FlowTable&&) = default;

  /// O(1). Null when absent.
  T* find(FlowId id) {
    const std::uint32_t ref = dir_lookup(id);
    return ref == 0 ? nullptr : &slot(ref - 1);
  }
  const T* find(FlowId id) const {
    const std::uint32_t ref = dir_lookup(id);
    return ref == 0 ? nullptr : &slot(ref - 1);
  }

  bool contains(FlowId id) const { return dir_lookup(id) != 0; }

  /// O(1) lookup; inserts a default-constructed T when absent (allocating
  /// only when the directory page, slab chunk or order index must grow —
  /// never when a freed slot can be recycled).
  T& operator[](FlowId id) {
    assert(id < kMaxFlowId && "flow id out of FlowTable range");
    const std::size_t page = id >> kPageShift;
    if (page >= pages_.size()) pages_.resize(page + 1);
    if (!pages_[page]) pages_[page] = std::make_unique<Page>();
    std::uint32_t& ref = pages_[page]->refs[id & kPageMask];
    if (ref == 0) {
      ref = acquire_slot() + 1;
      ++pages_[page]->live;
      ++size_;
      order_.push_back(id);
      if (!order_dirty_ && order_.size() > 1 &&
          order_[order_.size() - 2] >= id) {
        order_dirty_ = true;  // out-of-order insert: order_ is no longer sorted
      }
    }
    return slot(ref - 1);
  }

  /// O(1). The value is reset to T{} (releasing what it held) and its slot
  /// recycled. Returns true when something was erased.
  bool erase(FlowId id) {
    const std::size_t page = id >> kPageShift;
    if (page >= pages_.size() || !pages_[page]) return false;
    std::uint32_t& ref = pages_[page]->refs[id & kPageMask];
    if (ref == 0) return false;
    const std::uint32_t s = ref - 1;
    slot(s) = T{};
    free_.push_back(s);
    ref = 0;
    --pages_[page]->live;
    --size_;
    order_dirty_ = true;  // order_ now holds a stale id
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    pages_.clear();
    chunks_.clear();
    free_.clear();
    order_.clear();
    order_dirty_ = false;
    size_ = 0;
  }

  /// Ascending-id iteration: fn(FlowId, T&). Deterministic by construction
  /// (directory walk). fn may erase entries but must not insert.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      if (!pages_[p] || pages_[p]->live == 0) continue;
      for (std::size_t off = 0; off < kPageSize; ++off) {
        const std::uint32_t ref = pages_[p]->refs[off];
        if (ref == 0) continue;
        if (!invoke(fn, (p << kPageShift) | off, slot(ref - 1))) return;
      }
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t p = 0; p < pages_.size(); ++p) {
      if (!pages_[p] || pages_[p]->live == 0) continue;
      for (std::size_t off = 0; off < kPageSize; ++off) {
        const std::uint32_t ref = pages_[p]->refs[off];
        if (ref == 0) continue;
        if (!invoke(fn, (p << kPageShift) | off, slot(ref - 1))) return;
      }
    }
  }

  /// Descending-id iteration (the credit controller donates from the
  /// newest incumbents first). fn may return bool; false stops the walk.
  template <typename Fn>
  void for_each_desc(Fn&& fn) {
    for (std::size_t p = pages_.size(); p-- > 0;) {
      if (!pages_[p] || pages_[p]->live == 0) continue;
      for (std::size_t off = kPageSize; off-- > 0;) {
        const std::uint32_t ref = pages_[p]->refs[off];
        if (ref == 0) continue;
        if (!invoke(fn, (p << kPageShift) | off, slot(ref - 1))) return;
      }
    }
  }

  /// Live ids in insertion order. Erase (or an out-of-order insert after
  /// one) marks the index dirty; it is lazily compacted here — stale ids
  /// dropped, duplicates collapsed to their latest insertion — so the
  /// returned sequence always matches the current key set.
  const std::vector<FlowId>& insertion_order() const {
    if (order_dirty_) {
      std::vector<FlowId> compact;
      compact.reserve(size_);
      for (const FlowId id : order_) {
        if (contains(id)) compact.push_back(id);
      }
      // A re-inserted id appears twice; keep the first occurrence (its slot
      // identity is the same either way).
      std::vector<FlowId> dedup;
      dedup.reserve(compact.size());
      for (const FlowId id : compact) {
        bool seen = false;
        for (const FlowId d : dedup) {
          if (d == id) {
            seen = true;
            break;
          }
        }
        if (!seen) dedup.push_back(id);
      }
      order_ = std::move(dedup);
      order_dirty_ = false;
    }
    return order_;
  }

  /// Slab chunks currently allocated (white-box: memory-shape tests).
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kPageShift = 12;
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;
  static constexpr std::size_t kPageMask = kPageSize - 1;
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  /// Flow ids are small dense integers (1..N); the directory is 8 bytes per
  /// 4096-id page, so even 2^26 covers any realistic deployment while still
  /// catching a buffer-id-namespace value (1<<32 and up) passed by mistake.
  static constexpr FlowId kMaxFlowId = FlowId{1} << 26;

  struct Page {
    std::uint32_t refs[kPageSize] = {};  // slot + 1; 0 = absent
    std::uint32_t live = 0;
  };

  std::uint32_t dir_lookup(FlowId id) const {
    const std::size_t page = id >> kPageShift;
    if (page >= pages_.size() || !pages_[page]) return 0;
    return pages_[page]->refs[id & kPageMask];
  }

  T& slot(std::uint32_t s) { return chunks_[s >> kChunkShift][s & kChunkMask]; }
  const T& slot(std::uint32_t s) const {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    const std::uint32_t s = next_slot_++;
    if ((s >> kChunkShift) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return s;
  }

  // Accepts both void- and bool-returning callbacks; false stops the walk.
  template <typename Fn, typename U>
  static bool invoke(Fn&& fn, FlowId id, U& value) {
    if constexpr (std::is_void_v<decltype(fn(id, value))>) {
      fn(id, value);
      return true;
    } else {
      return fn(id, value);
    }
  }

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<std::unique_ptr<T[]>> chunks_;  // slab: slot addresses never move
  std::vector<std::uint32_t> free_;           // LIFO: reuse stays cache-warm
  mutable std::vector<FlowId> order_;         // insertion-order index
  mutable bool order_dirty_ = false;
  std::uint32_t next_slot_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ceio
