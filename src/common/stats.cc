#include "common/stats.h"

#include <cmath>
#include <cstdio>
#include <iostream>

namespace ceio {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

PercentileTracker::PercentileTracker(std::size_t cap) : cap_(cap) {
  samples_.reserve(std::min<std::size_t>(cap_, 4096));
}

void PercentileTracker::add(double x) {
  ++total_;
  sorted_ = false;
  if (samples_.size() < cap_) {
    samples_.push_back(x);
    return;
  }
  // Reservoir sampling: keep each of the `total_` samples with equal
  // probability cap_/total_.
  lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const auto r = static_cast<std::int64_t>((lcg_ >> 16) % static_cast<std::uint64_t>(total_));
  if (r < static_cast<std::int64_t>(cap_)) {
    samples_[static_cast<std::size_t>(r)] = x;
  }
}

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void PercentileTracker::clear() {
  samples_.clear();
  total_ = 0;
  sorted_ = false;
}

void RateMeter::record(Nanos now, Bytes bytes, std::int64_t packets) {
  bytes_ += bytes;
  packets_ += packets;
  if (first_ < Nanos{0}) first_ = now;
  last_ = std::max(last_, now);
}

double RateMeter::mpps(Nanos t_begin, Nanos t_end) const {
  const Nanos span = t_end - t_begin;
  if (span <= Nanos{0} || packets_ == 0) return 0.0;
  return static_cast<double>(packets_) / to_seconds(span) / 1e6;
}

double RateMeter::gbps(Nanos t_begin, Nanos t_end) const {
  const Nanos span = t_end - t_begin;
  if (span <= Nanos{0} || bytes_ == Bytes{0}) return 0.0;
  return to_gbps(rate_of(bytes_, span));
}

void RateMeter::reset() {
  bytes_ = Bytes{};
  packets_ = 0;
  first_ = Nanos{-1};
  last_ = Nanos{-1};
}

std::size_t LatencyHistogram::bucket_index(Nanos v) const {
  if (v < Nanos{1}) v = Nanos{1};
  int log2 = 0;
  auto u = static_cast<std::uint64_t>(v.count());
  while (u >= 2) {
    u >>= 1;
    ++log2;
  }
  if (log2 >= kLog2Max) log2 = kLog2Max - 1;
  // Linear sub-bucket within [2^log2, 2^(log2+1)).
  const Nanos base{std::int64_t{1} << log2};
  const Nanos sub_width = std::max(base / kSubBuckets, Nanos{1});
  auto sub = static_cast<std::size_t>((v - base) / sub_width);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<std::size_t>(log2) * kSubBuckets + sub;
}

Nanos LatencyHistogram::bucket_upper(std::size_t idx) const {
  const auto log2 = static_cast<int>(idx / kSubBuckets);
  const auto sub = static_cast<std::int64_t>(idx % kSubBuckets);
  const Nanos base{std::int64_t{1} << log2};
  const Nanos sub_width = std::max(base / kSubBuckets, Nanos{1});
  return base + sub_width * (sub + 1) - Nanos{1};
}

void LatencyHistogram::add(Nanos latency) {
  const std::size_t idx = bucket_index(latency);
  auto& chunk = chunks_[idx / kChunkBuckets];
  if (!chunk) chunk = std::make_unique<std::int64_t[]>(kChunkBuckets);  // zeroed
  ++chunk[idx % kChunkBuckets];
  ++total_;
  sum_ += static_cast<double>(latency.count());
}

Nanos LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return Nanos{};
  const auto target = static_cast<std::int64_t>(
      std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_)));
  std::int64_t seen = 0;
  for (std::size_t c = 0; c < kNumChunks; ++c) {
    if (!chunks_[c]) continue;  // a null chunk is all zeros: nothing to count
    for (std::size_t i = 0; i < kChunkBuckets; ++i) {
      seen += chunks_[c][i];
      if (seen >= target) return bucket_upper(c * kChunkBuckets + i);
    }
  }
  return bucket_upper(kNumBuckets - 1);
}

void LatencyHistogram::clear() {
  // Zero in place rather than freeing: clear() is the warmup->measurement
  // reset, and the next add() almost always lands in the same band — a
  // freed chunk would be re-allocated inside the measured window (the
  // zero-allocation test pins this).
  for (auto& chunk : chunks_) {
    if (chunk) std::fill(chunk.get(), chunk.get() + kChunkBuckets, 0);
  }
  total_ = 0;
  sum_ = 0.0;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  // TablePrinter exists to put tables on the console for benches and tools.
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());  // lint: allow-stdout
    }
    std::printf("\n");  // lint: allow-stdout
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());  // lint: allow-stdout
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace ceio
