#include "ceio/credit_controller.h"

#include <algorithm>

namespace ceio {

CreditController::CreditController(std::int64_t total_credits)
    : total_(total_credits), free_pool_(total_credits) {}

void CreditController::set_total(std::int64_t total_credits) {
  free_pool_ += total_credits - total_;
  total_ = total_credits;
}

std::int64_t CreditController::fair_share() const {
  return active_count_ > 0 ? total_ / static_cast<std::int64_t>(active_count_) : total_;
}

std::int64_t CreditController::credits(FlowId id) const {
  const FlowCredits* fc = flows_.find(id);
  return fc == nullptr ? 0 : fc->balance;
}

bool CreditController::active(FlowId id) const {
  const FlowCredits* fc = flows_.find(id);
  return fc != nullptr && fc->active;
}

std::int64_t CreditController::debt_of(FlowId id) const {
  const FlowCredits* fc = flows_.find(id);
  if (fc == nullptr) return 0;
  std::int64_t debt = 0;
  for (const auto& [_, owed] : fc->owes) debt += owed;
  return debt;
}

std::int64_t CreditController::balance_sum() const {
  std::int64_t sum = free_pool_;
  flows_.for_each([&sum](FlowId, const FlowCredits& fc) { sum += fc.balance; });
  return sum;
}

void CreditController::assign_to_new_flows(const std::vector<FlowId>& newcomers) {
  if (newcomers.empty()) return;
  const auto m = static_cast<std::int64_t>(newcomers.size());
  const auto n = static_cast<std::int64_t>(active_count_) - m;  // incumbents
  const std::int64_t target = total_ / (n + m);

  // Funds gathered for the newcomers: free pool first, then donations. The
  // pool can be transiently negative (it absorbs consume-overshoot when a
  // flow is reclaimed mid-flight); never draw from a negative pool.
  std::int64_t gathered = std::clamp<std::int64_t>(free_pool_, 0, m * target);
  free_pool_ -= gathered;

  std::int64_t still_needed = m * target - gathered;
  if (still_needed > 0 && n > 0) {
    // Wealth cap: incumbents holding more than twice the new target donate
    // their excess first. The equal-ask loop below stops once the ask is
    // met, which — now that the donation order is pinned — would spare the
    // same tail flows at every arrival and let an early arrival's surplus
    // survive forever (property: ArrivalsStayFair). Draining strictly-
    // above-2x holders first bounds every balance near 2x the current
    // share without touching histories where nobody exceeds the cap.
    flows_.for_each_desc([&](FlowId id, FlowCredits& fc) {
      if (still_needed <= 0) return false;
      if (!fc.active) return true;
      if (std::find(newcomers.begin(), newcomers.end(), id) != newcomers.end()) return true;
      const std::int64_t excess = fc.balance - 2 * target;
      if (excess <= 0) return true;
      const std::int64_t give = std::min(excess, still_needed);
      fc.balance -= give;
      gathered += give;
      still_needed -= give;
      return true;
    });
    const std::int64_t per_incumbent = (still_needed + n - 1) / n;
    flows_.for_each_desc([&](FlowId id, FlowCredits& fc) {
      if (still_needed <= 0) return false;
      if (!fc.active) return true;
      // Skip the newcomers themselves.
      if (std::find(newcomers.begin(), newcomers.end(), id) != newcomers.end()) return true;
      const std::int64_t ask = std::min(per_incumbent, still_needed);
      const std::int64_t give = std::clamp<std::int64_t>(fc.balance, 0, ask);
      fc.balance -= give;
      gathered += give;
      still_needed -= give;
      const std::int64_t shortfall = ask - give;
      if (shortfall > 0) {
        // Algorithm 1 lines 8-14: the poor incumbent records per-newcomer
        // debts, repaid out of its future releases. The newcomers start
        // under target and get topped up as debts settle.
        still_needed -= shortfall;  // claimed via debt, not via balance
        const std::int64_t per_new = shortfall / m;
        std::int64_t rem = shortfall - per_new * m;
        for (const FlowId nj : newcomers) {
          std::int64_t owe = per_new + (rem > 0 ? 1 : 0);
          if (rem > 0) --rem;
          if (owe > 0) fc.owes[nj] += owe;
        }
      }
      return true;
    });
  }

  // Distribute the gathered balance equally among newcomers.
  const std::int64_t per_new = gathered / m;
  std::int64_t rem = gathered - per_new * m;
  for (const FlowId id : newcomers) {
    auto& fc = flows_[id];
    fc.balance += per_new + (rem > 0 ? 1 : 0);
    if (rem > 0) --rem;
  }
}

void CreditController::add_flows(const std::vector<FlowId>& arrivals) {
  std::vector<FlowId> newcomers;
  newcomers.reserve(arrivals.size());
  for (const FlowId id : arrivals) {
    auto& fc = flows_[id];
    if (fc.active) continue;
    fc.active = true;
    ++active_count_;
    newcomers.push_back(id);
  }
  assign_to_new_flows(newcomers);
}

void CreditController::remove_flow(FlowId id) {
  const FlowCredits* removed = flows_.find(id);
  if (removed == nullptr) return;
  if (removed->active) --active_count_;
  free_pool_ += removed->balance;  // may absorb a negative overshoot
  flows_.erase(id);
  // Cancel debts owed *to* the removed flow: the debtors simply keep their
  // future releases (no balance moves, so conservation holds).
  flows_.for_each([id](FlowId, FlowCredits& fc) { fc.owes.erase(id); });
}

void CreditController::reclaim(FlowId id) {
  FlowCredits* fc = flows_.find(id);
  if (fc == nullptr || !fc->active) return;
  fc->active = false;
  --active_count_;
  free_pool_ += fc->balance;
  fc->balance = 0;
}

void CreditController::reactivate(FlowId id) {
  const FlowCredits* fc = flows_.find(id);
  if (fc != nullptr && fc->active) return;
  add_flows({id});
}

std::int64_t CreditController::consume(FlowId id, std::int64_t n) {
  auto& fc = flows_[id];
  fc.balance -= n;
  return fc.balance;
}

void CreditController::release(FlowId id, std::int64_t n) {
  FlowCredits* found = flows_.find(id);
  if (found == nullptr) {
    free_pool_ += n;  // flow vanished; its credits return to the system
    return;
  }
  auto& fc = *found;
  std::int64_t remaining = n;
  // Repay debts first (Algorithm 1 lines 19-25).
  for (auto debt = fc.owes.begin(); debt != fc.owes.end() && remaining > 0;) {
    const std::int64_t pay = std::min(debt->second, remaining);
    remaining -= pay;
    debt->second -= pay;
    FlowCredits* creditor = flows_.find(debt->first);
    if (creditor != nullptr && creditor->active) {
      creditor->balance += pay;
    } else {
      free_pool_ += pay;  // creditor gone or reclaimed: return to the pool
    }
    debt = debt->second == 0 ? fc.owes.erase(debt) : std::next(debt);
  }
  if (remaining > 0) {
    if (fc.active) {
      fc.balance += remaining;
    } else {
      free_pool_ += remaining;
    }
  }
}

}  // namespace ceio
