// CEIO driver facade: the socket-like receive API of paper §5.
//
// Applications that integrate CEIO directly (rather than through the
// testbed's automatic per-flow pump) put their flow into *manual consume*
// mode and pull packets through this facade:
//
//   CeioDriver driver(*bed.ceio(), flow_id);
//   driver.post_recv(16);                  // optional zero-copy buffers
//   auto batch = driver.async_recv(32);    // never waits for slow-path DMA
//   ... process ...
//   for (auto& pkt : batch) driver.complete(pkt);  // releases buffers+credits
//
// `recv` and `async_recv` both return only in-order packets (the SW ring
// guarantee). The difference mirrors the paper: `recv` kicks the slow-path
// drain on demand when the next in-order packet is still in on-NIC memory,
// while `async_recv` keeps the drain running eagerly in the background so a
// later call finds the packets already landed. `complete` is the ownership
// hand-back that advances the ring head — the event CEIO's lazy credit
// release keys on.
#pragma once

#include <cstdint>
#include <vector>

#include "ceio/ceio_datapath.h"

namespace ceio {

class CeioDriver {
 public:
  /// Puts `flow` into manual-consume mode on construction. The flow must be
  /// registered with the datapath (Testbed::add_flow does that).
  CeioDriver(CeioDatapath& datapath, FlowId flow);
  ~CeioDriver();

  CeioDriver(const CeioDriver&) = delete;
  CeioDriver& operator=(const CeioDriver&) = delete;

  /// Fills `out` with in-order packets that have landed in host memory (up
  /// to its remaining room; the burst is caller-owned, so the hot receive
  /// loop never allocates). If the next in-order packet sits in on-NIC
  /// memory, starts the drain (demand-driven, like the blocking recv() in
  /// the paper — in a discrete-event world the "block" is simply: run the
  /// simulator and call again). Returns the number of packets appended.
  std::size_t recv(PacketBurst& out);

  /// Same, but also keeps the slow-path drain armed so future packets land
  /// without a demand kick (the §4.2 asynchronous access optimisation).
  std::size_t async_recv(PacketBurst& out);

  /// Legacy allocating overloads; prefer the PacketBurst forms on hot paths.
  std::vector<Packet> recv(std::size_t max_pkts);        // lint: allow-vector-return
  std::vector<Packet> async_recv(std::size_t max_pkts);  // lint: allow-vector-return

  /// Zero-copy support: grants the driver `count` application-owned RX
  /// buffers. Subsequent fast-path DMA for this flow lands in these buffers
  /// (ownership returns to the application with the packet). Returns the
  /// ids assigned to the posted buffers.
  std::vector<BufferId> post_recv(std::size_t count);

  /// Ownership hand-back for one received packet: recycles pool buffers,
  /// advances message progress and (lazily) replenishes credits.
  void complete(const Packet& pkt);

  /// Packets landed and waiting for recv().
  std::size_t pending() const;

  FlowId flow() const { return flow_; }

 private:
  CeioDatapath& datapath_;
  FlowId flow_;
};

}  // namespace ceio
