// Elastic on-NIC buffer manager (paper §4.2).
//
// Packets that arrive while a flow holds no credits are written to on-NIC
// memory instead of being dropped (ShRing) or admitted into a thrashing LLC
// (legacy/HostCC). Each flow has a slow-path ring of buffered packets; the
// drain engine moves them to host memory via asynchronous PCIe DMA reads,
// bounded by the DMA engine's outstanding-read window. Draining is sticky:
// once requested it continues until the ring is empty (recv() drains the
// whole slow path before the fast path resumes — phase exclusivity). The
// slow path NIC -> on-NIC memory -> PCIe -> LLC/DRAM is latency-bound for
// small packets (internal PCIe switch + onboard DRAM), reproducing the
// Figure 11 fast/slow gap.
#pragma once

#include <cstdint>
#include <functional>

#include "common/grow_ring.h"
#include "common/units.h"
#include "nic/nic_memory.h"
#include "nic/packet.h"
#include "pcie/dma_engine.h"
#include "sim/event_scheduler.h"

namespace ceio {

class Telemetry;

struct ElasticBufferStats {
  std::int64_t buffered_pkts = 0;
  std::int64_t drained_pkts = 0;
  std::int64_t dropped_pkts = 0;  // on-NIC memory exhausted
  Bytes buffered_bytes{0};
};

/// Per-flow slow-path ring plus the drain engine.
class ElasticBuffer {
 public:
  /// Called when a drained packet's PCIe read completes; the caller finishes
  /// the host-side landing (so it controls cache placement and ring posting).
  using LandedHandler = std::function<void(Packet pkt, Nanos now)>;  // lint: allow-packet-copy (move-sink)

  /// `gate` (optional) is consulted before each read is issued; returning
  /// false pauses the drain (e.g. too many landed-but-unconsumed packets
  /// would flush the LLC). Re-kick with drain() once the gate reopens.
  using IssueGate = std::function<bool()>;

  ElasticBuffer(EventScheduler& sched, NicMemory& nic_mem, DmaEngine& dma,
                std::size_t drain_window, LandedHandler handler, IssueGate gate = nullptr);

  /// Buffers a packet in on-NIC memory. Returns false when the on-NIC
  /// memory is exhausted (caller drops the packet).
  bool buffer_packet(Packet pkt);  // lint: allow-packet-copy (move-sink)

  /// Requests draining. Sticky: reads keep being issued (window-bounded)
  /// until the ring and in-flight set are empty, including for packets that
  /// arrive while the drain is in progress.
  void drain();

  /// Packets buffered and not yet handed to the DMA engine.
  std::size_t backlog() const { return ring_.size(); }
  /// Packets whose DMA read is in flight.
  int in_flight() const { return in_flight_; }
  bool idle() const { return ring_.empty() && in_flight_ == 0 && pending_writes_ == 0; }
  bool draining() const { return draining_; }

  const ElasticBufferStats& stats() const { return stats_; }

  /// Attaches a trace sink: ring depth + in-flight reads show up as counters
  /// on the elastic-buffer track.
  void set_telemetry(Telemetry* tele) { tele_ = tele; }

 private:
  void issue_ready();

  EventScheduler& sched_;
  NicMemory& nic_mem_;
  DmaEngine& dma_;
  std::size_t drain_window_;
  LandedHandler handler_;
  IssueGate gate_;
  // Lazy FIFO: an idle flow's elastic buffer holds no ring storage.
  GrowRing<Packet> ring_;
  int in_flight_ = 0;
  int pending_writes_ = 0;  // packets still being written into on-NIC DRAM
  bool draining_ = false;
  ElasticBufferStats stats_;
  Telemetry* tele_ = nullptr;
};

}  // namespace ceio
