// CEIO software ring: the ordering abstraction over the fast/slow HW rings
// (paper §4.2, Figure 7).
//
// The NIC steers each packet to exactly one path, and CEIO's phase
// exclusivity guarantees the two paths never interleave within a phase. The
// SW ring therefore only has to remember the *sequence of path segments* in
// steering order: [fast×4, slow×14, fast×4, ...]. The consumer (driver
// recv()) asks which path holds the next in-order packet and consumes
// segment by segment — no per-packet metadata or sorting, exactly the
// property the paper claims over software reordering schemes.
#pragma once

#include <cstdint>

#include "common/grow_ring.h"

namespace ceio {

class SwRing {
 public:
  enum class Path { kFast, kSlow, kNone };

  /// Records that the NIC steered one packet to `fast` (true) or slow.
  /// Called at steering time, in arrival order.
  void note_steered(bool fast) {
    if (!segments_.empty() && segments_.back().fast == fast) {
      ++segments_.back().count;
    } else {
      segments_.push_back(Segment{fast, 1});
    }
    ++pending_;
  }

  /// Which path holds the next in-order packet (kNone when empty).
  Path next() const {
    if (segments_.empty()) return Path::kNone;
    return segments_.front().fast ? Path::kFast : Path::kSlow;
  }

  /// Consumes the next in-order packet; must match next().
  void consumed() {
    if (segments_.empty()) return;
    --pending_;
    if (--segments_.front().count == 0) segments_.pop_front();
  }

  /// Packets steered but not yet consumed.
  std::uint64_t pending() const { return pending_; }
  /// Sum of per-segment counts; equals pending() whenever the ring is
  /// coherent (checked by the model auditor).
  std::uint64_t segment_sum() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) sum += segments_.at(i).count;
    return sum;
  }
  /// Number of path segments outstanding (1 == single-path steady state).
  std::size_t segment_count() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  void clear() {
    segments_.clear();
    pending_ = 0;
  }

 private:
  struct Segment {
    bool fast;
    std::uint64_t count;
  };
  // Run-length segments, consumed FIFO; lazy ring so an idle flow holds no
  // segment storage at all (one SwRing per flow, 2^20 flows at fig12 scale).
  GrowRing<Segment> segments_;
  std::uint64_t pending_ = 0;
};

}  // namespace ceio
