// Credit-based flow controller state machine (paper §4.1, Algorithm 1).
//
// Pure bookkeeping, no simulator dependencies: the total credit budget
// C_total = LLC_DDIO_bytes / buffer_bytes (Eq. 1) is divided among *active*
// flows. Arrivals trigger the Algorithm 1 assignment: each incumbent flow
// donates (m/n)·C_flow toward the m newcomers; incumbents too poor to donate
// in full give everything they have and record per-newcomer debts (the
// owed-credit set I), repaid with priority out of their future releases
// (lines 16–25). Inactive flows are reclaimed into a free pool and
// re-admitted through the same assignment path, which is how CEIO scales to
// thousands of flows with a bounded budget (§4.1 Q3).
//
// Balances may go slightly negative: the data path consumes credits
// unconditionally (the RMT rule only flips at the next controller poll), so
// the controller tolerates bounded overshoot — exactly the behaviour of the
// polled hardware counters in the real system.
#pragma once

#include <cstdint>
#include <vector>

#include "common/det_map.h"
#include "common/flow_table.h"
#include "nic/packet.h"

namespace ceio {

class CreditController {
 public:
  explicit CreditController(std::int64_t total_credits);

  // ---- Membership (Algorithm 1) ----

  /// Admits `arrivals` as active flows, redistributing credits per
  /// Algorithm 1. Flows already active are ignored.
  void add_flows(const std::vector<FlowId>& arrivals);

  /// Permanently removes a flow: its balance returns to the free pool and
  /// all debts involving it are cancelled.
  void remove_flow(FlowId id);

  /// Marks a flow inactive: its remaining balance moves to the free pool.
  /// The flow stays known (its debts persist) but holds no credits.
  void reclaim(FlowId id);

  /// Re-activates a previously reclaimed flow through the Algorithm 1
  /// assignment path (free pool first, then donations from active flows).
  void reactivate(FlowId id);

  /// Rebalances the total budget (multi-domain credit arbitration: the host
  /// shard shifts C_total between per-domain controllers). The delta lands
  /// in the free pool — which may go negative when shrinking below the
  /// currently assigned sum; future releases repay it, the same bounded
  /// overshoot the poll-lag path already tolerates.
  void set_total(std::int64_t total_credits);

  // ---- Data-path accounting ----

  /// Consumes `n` credits for a fast-path packet burst. Unconditional: the
  /// balance may go negative (RMT poll lag). Returns the new balance.
  std::int64_t consume(FlowId id, std::int64_t n);

  /// Credit release (lazy, driver-triggered). Debts are repaid first
  /// (Algorithm 1 lines 19–25); the remainder returns to the flow.
  void release(FlowId id, std::int64_t n);

  // ---- Introspection ----

  std::int64_t credits(FlowId id) const;
  bool active(FlowId id) const;
  std::size_t active_count() const { return active_count_; }
  std::int64_t total() const { return total_; }
  std::int64_t free_pool() const { return free_pool_; }
  /// The per-flow target share at the current active count.
  std::int64_t fair_share() const;
  /// Outstanding debt the flow owes to others.
  std::int64_t debt_of(FlowId id) const;
  /// Sum of balances + free pool + consumed-but-unreleased must equal
  /// total(); `outstanding` is the consumed-unreleased amount the caller
  /// tracks. Exposed for invariant checks in tests.
  std::int64_t balance_sum() const;

 private:
  struct FlowCredits {
    std::int64_t balance = 0;
    bool active = false;
    // o^i_j: credits this flow still owes to flow j (Algorithm 1 line 12).
    // Key-ordered so partial repayments in release() pay creditors in a
    // pinned order — a property of the model, not of a hash function.
    // Newest-creditor-first matches the head-insertion iteration order the
    // committed goldens were recorded under.
    det::OrderedMap<FlowId, std::int64_t, std::greater<FlowId>> owes;
  };

  void assign_to_new_flows(const std::vector<FlowId>& newcomers);

  std::int64_t total_;
  std::int64_t free_pool_;
  std::size_t active_count_ = 0;
  // Dense slab: consume() runs per fast-path packet, so the lookup must be
  // an O(1) array probe. The Algorithm 1 donation loop walks incumbents and
  // stops once the newcomers' ask is met, so iteration order decides who
  // donates the remainder; it uses for_each_desc because descending id
  // (newest flow donates first) is the order the committed goldens were
  // recorded under — flows register in ascending id order and the original
  // libstdc++ hash map iterated newest-insertion-first.
  FlowTable<FlowCredits> flows_;
};

}  // namespace ceio
