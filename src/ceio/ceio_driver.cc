#include "ceio/ceio_driver.h"

namespace ceio {

CeioDriver::CeioDriver(CeioDatapath& datapath, FlowId flow)
    : datapath_(datapath), flow_(flow) {
  datapath_.set_manual_consume(flow_, true);
}

CeioDriver::~CeioDriver() { datapath_.set_manual_consume(flow_, false); }

std::size_t CeioDriver::recv(PacketBurst& out) {
  const std::size_t n =
      datapath_.driver_recv(flow_, out.tail(), out.room(), /*eager_drain=*/false);
  out.commit(n);
  return n;
}

std::size_t CeioDriver::async_recv(PacketBurst& out) {
  const std::size_t n =
      datapath_.driver_recv(flow_, out.tail(), out.room(), /*eager_drain=*/true);
  out.commit(n);
  return n;
}

std::vector<Packet> CeioDriver::recv(std::size_t max_pkts) {  // lint: allow-vector-return
  return datapath_.driver_recv(flow_, max_pkts, /*eager_drain=*/false);
}

std::vector<Packet> CeioDriver::async_recv(std::size_t max_pkts) {  // lint: allow-vector-return
  return datapath_.driver_recv(flow_, max_pkts, /*eager_drain=*/true);
}

std::vector<BufferId> CeioDriver::post_recv(std::size_t count) {
  return datapath_.driver_post_recv(flow_, count);
}

void CeioDriver::complete(const Packet& pkt) { datapath_.driver_complete(flow_, pkt); }

std::size_t CeioDriver::pending() const { return datapath_.driver_pending(flow_); }

}  // namespace ceio
