#include "ceio/elastic_buffer.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace ceio {

ElasticBuffer::ElasticBuffer(EventScheduler& sched, NicMemory& nic_mem, DmaEngine& dma,
                             std::size_t drain_window, LandedHandler handler, IssueGate gate)
    : sched_(sched),
      nic_mem_(nic_mem),
      dma_(dma),
      drain_window_(drain_window),
      handler_(std::move(handler)),
      gate_(std::move(gate)) {}

bool ElasticBuffer::buffer_packet(Packet pkt) {
  if (!nic_mem_.allocate(pkt.size)) {
    ++stats_.dropped_pkts;
    return false;
  }
  // The write into on-NIC DRAM happens off the critical path; the descriptor
  // becomes drainable once the write completes.
  const Nanos written = nic_mem_.write(sched_.now(), pkt.size);
  stats_.buffered_bytes += pkt.size;
  ++stats_.buffered_pkts;
  ++pending_writes_;
  sched_.schedule_at(written, [this, pkt = std::move(pkt)]() mutable {
    --pending_writes_;
    ring_.push_back(std::move(pkt));
    CEIO_T_COUNTER(tele_, TraceTrack::kElasticBuffer, "elastic.ring_depth", sched_.now(),
                   static_cast<double>(ring_.size()));
    if (draining_) issue_ready();
  });
  return true;
}

void ElasticBuffer::drain() {
  draining_ = true;
  issue_ready();
}

void ElasticBuffer::issue_ready() {
  while (in_flight_ < static_cast<int>(drain_window_) && !ring_.empty() &&
         (!gate_ || gate_())) {
    Packet pkt = ring_.pop_front();
    ++in_flight_;
    CEIO_T_COUNTER(tele_, TraceTrack::kElasticBuffer, "elastic.in_flight", sched_.now(),
                   static_cast<double>(in_flight_));
    const Bytes size = pkt.size;
    dma_.read_from_nic(
        size, [this, size](Nanos issue) { return nic_mem_.read(issue, size); },
        [this, pkt = std::move(pkt), size](Nanos now) mutable {
          nic_mem_.free(size);
          --in_flight_;
          ++stats_.drained_pkts;
          if (idle()) draining_ = false;  // drain satisfied; re-arm on demand
          handler_(std::move(pkt), now);
          if (draining_) issue_ready();
        });
  }
}

}  // namespace ceio
