// CEIO datapath: proactive credit-based flow control + elastic buffering
// (paper §3–§4). This is the paper's contribution, assembled from the
// substrates: the RMT steering engine and on-NIC memory on the NIC side, the
// credit controller and elastic buffer manager as the CEIO runtime, and the
// SW-ring driver semantics (recv()/async_recv()) on the host side.
//
// Life of a packet:
//   * fast path — the flow holds credits: the RMT rule DMAs the packet to
//     host memory through DDIO; one credit is consumed. Credits are released
//     lazily, a batch at a time, when the driver observes ring-head
//     advancement (involved flows) or a message completion (bypass flows).
//   * slow path — credits exhausted: the controller has flipped the flow's
//     steering rule, so the packet lands in on-NIC memory. The elastic
//     buffer drains it to the host via asynchronous DMA reads when the
//     consumer reaches that segment (or eagerly, with the async_recv
//     optimization). The SW ring preserves arrival order across the
//     alternating path segments.
//
// The controller runs two periodic loops on the (simulated) NIC cores: the
// counter poll (steering transitions, inactivity reclaim, slow-path CCA
// triggers) and the round-robin re-activation of reclaimed flows (§4.1 Q3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ceio/credit_controller.h"
#include "common/grow_ring.h"
#include "ceio/elastic_buffer.h"
#include "ceio/sw_ring.h"
#include "iopath/datapath.h"
#include "nic/nic_memory.h"
#include "nic/rmt_engine.h"
#include "sim/coalesced_stream.h"

namespace ceio {

/// Host landing buffers for slow-path drains live in their own id range,
/// one rotating window per flow: flow f's window is
/// [kSlowLandingBase + (f << 20), +kLandingWindow). Exposed so multi-tenant
/// assemblies can map landing ids back to the owning tenant's LLC slice.
inline constexpr BufferId kSlowLandingBase = 1ULL << 32;
inline constexpr BufferId kLandingWindow = 1ULL << 16;

/// Steering policy for the fast/slow decision. The paper (§4.1) considers
/// PIAS-style Multiple Priority Queues — priority decays with bytes sent, so
/// short flows ride the fast path — and rejects it because CPU-involved
/// flows are not always short (continuous RPC streams decay to low priority
/// and get exiled to the slow path). Both policies run over the same elastic
/// architecture here, so `bench/ablation_mpq` can compare them directly.
enum class SteerPolicy {
  kCreditBased,  // the paper's design: lazy-release credits sized by Eq. 1
  kMpqPias,      // the rejected alternative: byte-count priority decay
};

struct CeioConfig {
  SteerPolicy policy = SteerPolicy::kCreditBased;
  /// MPQ demotion thresholds (cumulative bytes); a flow's priority level is
  /// the number of thresholds it has crossed.
  std::vector<Bytes> mpq_thresholds{100 * kKiB, kMiB, 10 * kMiB};
  /// Levels [0, mpq_fast_levels) use the fast path.
  int mpq_fast_levels = 2;

  /// C_total (Eq. 1): LLC_DDIO_bytes / buffer_bytes. The testbed derives the
  /// default from its LLC configuration; 3000 matches the paper's setup.
  std::int64_t total_credits = 3000;

  /// Added per-packet latency of the NIC-side controller logic (match-action
  /// + credit bookkeeping on the ARM cores). Pipelined, so it costs latency
  /// but not throughput — Table 3's 1.10-1.48x fast-path overhead.
  Nanos controller_latency{260};

  Nanos poll_interval = micros(1);     // controller counter-poll cadence
  Nanos doorbell_latency{500};        // driver -> NIC credit-release MMIO
  int release_batch = 32;              // lazy-release granularity (involved)
  Nanos inactive_timeout = millis(5);  // no-traffic reclaim threshold
  Nanos reactivate_period = micros(500);  // RR re-activation cadence (backup)
  int reactivate_per_round = 4;
  /// Traffic-triggered reactivation throughput of the on-NIC controller
  /// (Algorithm 1 run + RMT rule update per reactivation). This is the
  /// capacity that fast flow churn overruns in Figure 12.
  double reactivations_per_sec = 50'000.0;
  double reactivation_burst = 8.0;
  /// Flows examined per controller poll; with thousands of flows the ARM
  /// cores cannot touch every counter each microsecond, so the scan rotates.
  std::size_t poll_scan_limit = 64;
  /// Re-enable the fast path once the flow's balance recovers to this
  /// fraction of its fair share (hysteresis against rule flapping).
  double reenable_fraction = 0.25;

  std::size_t fast_ring_entries = 4096;
  std::size_t drain_window = 32;        // async slow-path reads in flight
  std::size_t landed_cap = 256;         // landed-but-unconsumed drain cap
  /// Bypass flows pipeline whole messages through the worker; their landed
  /// window is deeper (a few chunks) so assembly overlaps the work.
  std::size_t bypass_landed_cap = 768;
  /// Bypass slow-path backlog regarded as producer overrun (packets).
  std::size_t bypass_cca_threshold = 1536;
  std::size_t slow_cca_threshold = 192; // unconsumed backlog that triggers the CCA
  Nanos cca_min_gap = micros(10);       // per-flow CCA trigger rate limit
  /// Fast path re-enables once the slow backlog has drained below this and
  /// the balance recovered (the SW ring's segment ordering keeps delivery
  /// order exact across the residual drain).
  std::size_t reenable_backlog = 48;

  // §4.2 optimisations (Table 4 ablation switches).
  bool async_drain = true;      // overlap slow-path DMA reads (async_recv)
  bool phase_exclusive = true;  // segment ordering vs per-packet reordering
  Nanos reorder_penalty{200};  // per-packet cost when !phase_exclusive
};

struct CeioRuntimeStats {
  std::int64_t credit_switches_to_slow = 0;
  std::int64_t switches_back_to_fast = 0;
  std::int64_t inactive_reclaims = 0;
  std::int64_t reactivations = 0;
  std::int64_t cca_triggers = 0;
};

class CeioDatapath final : public DatapathBase {
 public:
  CeioDatapath(EventScheduler& sched, DmaEngine& dma, MemoryController& mc,
               BufferPool& host_pool, RmtEngine& rmt, NicMemory& nic_mem,
               const CeioConfig& config = {});
  ~CeioDatapath() override;

  const char* name() const override { return "ceio"; }
  void on_packet(Packet pkt) override;  // lint: allow-packet-copy (move-sink)
  /// Base path.* aggregates plus ceio.credits.* / ceio.slow.* gauges.
  void register_metrics(MetricRegistry& registry) override;
  /// Base hookup plus propagation into the per-flow elastic buffers.
  void set_telemetry(Telemetry* tele) override;

  const CreditController& credits() const { return credits_; }
  /// Host-shard credit arbitration (sharded runs): installs this domain's
  /// rebalanced share of the global C_total. Composes with the policy
  /// layer's credit scale: effective total = round(base * scale).
  void set_total_credits(std::int64_t v) {
    base_total_credits_ = v;
    apply_total_credits();
  }

  // ---- PolicyHost actuators (runtime governor; see src/policy/) ----
  void set_credit_scale(double scale) override;
  double credit_scale() const override { return credit_scale_; }
  void set_landed_caps(std::size_t involved_cap, std::size_t bypass_cap) override;

  const CeioConfig& config() const { return config_; }
  const CeioRuntimeStats& runtime_stats() const { return rt_stats_; }

  /// True when the flow is currently steered to the slow path.
  bool in_slow_mode(FlowId id) const;
  /// MPQ policy: the flow's current priority level (0 = highest).
  int mpq_level(FlowId id) const;

  // ---- Driver facade support (paper §5; see ceio_driver.h) ----
  /// Switches a flow between the internal pump (default) and manual
  /// consumption through a CeioDriver.
  void set_manual_consume(FlowId id, bool manual);
  /// Pops up to `max_pkts` in-order landed packets into caller-provided
  /// storage (no allocation). `eager_drain` keeps the slow path draining in
  /// the background (async_recv). Returns the number of packets written.
  std::size_t driver_recv(FlowId id, Packet* out, std::size_t max_pkts, bool eager_drain);
  /// Legacy allocating overload; prefer the span form on hot paths.
  std::vector<Packet> driver_recv(FlowId id, std::size_t max_pkts,  // lint: allow-vector-return
                                  bool eager_drain);
  /// Grants `count` application-owned zero-copy RX buffers to the flow.
  std::vector<BufferId> driver_post_recv(FlowId id, std::size_t count);
  /// Ownership hand-back: recycles the buffer, advances message progress and
  /// releases credits lazily.
  void driver_complete(FlowId id, const Packet& pkt);
  std::size_t driver_pending(FlowId id) const;
  /// Slow-path backlog (on-NIC ring + in-flight + landed) for a flow.
  std::size_t slow_backlog(FlowId id) const;

  /// White-box state snapshot for tests and diagnostics.
  struct SlowDebug {
    std::size_t nic_ring = 0;    // buffered in on-NIC memory
    int in_flight = 0;           // DMA reads outstanding
    std::size_t landed = 0;      // in host memory awaiting consumption
    std::size_t sw_segments = 0; // path segments pending in the SW ring
    std::uint64_t sw_pending = 0;
    std::uint64_t sw_segment_sum = 0;  // per-segment counts; == sw_pending when coherent
    std::int64_t lost_fast = 0;
    bool cpu_pumping = false;
    std::size_t fast_ring = 0;      // landed fast packets awaiting consumption
    bool sw_head_fast = false;      // path of the next in-order packet
    std::size_t slow_pool_free = 0;
    std::size_t host_pool_free = 0;
  };
  SlowDebug debug_slow_state(FlowId id) const;
  std::int64_t debug_unworked(FlowId id) const;
  std::size_t debug_open_messages(FlowId id) const;

 protected:
  void on_flow_registered(FlowState& fs) override;
  void on_flow_unregistered(FlowState& fs) override;
  void on_flow_path_changed(FlowState& fs) override;
  void on_message_work_done(FlowState& fs, const Packet& last_pkt, Nanos done) override;

 private:
  struct Ext {
    SwRing sw;
    std::unique_ptr<ElasticBuffer> elastic;
    GrowRing<Packet> landed_slow;  // drained packets now in host memory
    std::int64_t unreleased = 0;     // consumed credits pending lazy release
    std::int64_t processed_since_release = 0;
    std::int64_t lost_fast = 0;      // fast-path packets lost after steering
    Nanos last_packet_at{0};
    bool slow_mode = false;          // controller's intended steering
    bool cpu_pumping = false;
    std::size_t slow_backlog_last_poll = 0;
    Nanos last_cca_at{-1};
    bool cca_marking = false;  // drain-to-low hysteresis state
    Bytes bytes_seen{0};      // cumulative bytes (MPQ priority decay)
    BufferId next_landing_buffer = 0;  // rotating slow-path landing ids
    // Driver facade (manual-consume) state.
    bool manual = false;
    GrowRing<Packet> driver_queue;   // in-order packets awaiting recv()
    GrowRing<BufferId> posted;       // app-owned zero-copy buffers
    BufferId next_posted_id = 0;
    // Bypass flows: slow-path packets landed in host memory whose message
    // work has not retired yet. Gates the drain so landed data stays
    // LLC-resident until the worker reads it.
    std::int64_t slow_landed_unworked = 0;
    // Bypass flows: per-message (fast, slow) landed-packet counts, so the
    // work-retirement release returns exactly that message's credits.
    // Hash-based on purpose: bumped per packet (hot), never iterated.
    std::unordered_map<std::uint64_t, std::pair<std::int32_t, std::int32_t>> msg_path_counts;
  };

  Ext* ext_of(FlowId id);
  const Ext* ext_of(FlowId id) const;

  void deliver_fast_path(FlowState& fs, Ext& ext, Packet pkt);  // lint: allow-packet-copy (move-sink)
  void deliver_slow_path(FlowState& fs, Ext& ext, Packet pkt);  // lint: allow-packet-copy (move-sink)
  void on_fast_landed(FlowId flow, PacketRef ref);
  void on_slow_read_complete(FlowId flow, Packet pkt, Nanos now);  // lint: allow-packet-copy (move-sink)
  void land_slow_involved(FlowId flow, Packet pkt);  // lint: allow-packet-copy (move-sink)

  void pump(FlowId flow);
  void manual_pump(FlowState& fs, Ext& ext);
  void process_one(FlowState& fs, Ext& ext, Packet pkt, bool was_slow);  // lint: allow-packet-copy (move-sink)
  void schedule_credit_release(FlowId flow, std::int64_t count);
  void note_processed_for_release(FlowState& fs, Ext& ext, const Packet& pkt);

  std::int64_t reenable_threshold() const;
  void apply_total_credits();
  void controller_poll();
  void poll_flow(FlowId id, Ext& ext, Nanos now);
  void reactivation_round();
  bool take_reactivation_token();
  void kick_drain(FlowId flow, Ext& ext);

  RmtEngine& rmt_;
  NicMemory& nic_mem_;
  CeioConfig config_;
  CreditController credits_;
  /// Unscaled C_total (config or sharded arbitration); the effective total
  /// handed to the controller is round(base * credit_scale_), computed
  /// exactly (no rounding) while the scale is 1.0.
  std::int64_t base_total_credits_;
  double credit_scale_ = 1.0;
  // Dense slab keyed by flow id: ext_of() is on the per-packet fast path,
  // so lookups are O(1) array probes. Control-flow ordering comes from
  // reactivation_order_ (an explicit vector); sweeps iterate in id order.
  FlowTable<Ext> ext_;
  // Elastic buffers of unregistered flows, parked until destruction because
  // in-flight DMA callbacks may still reference them.
  std::vector<std::unique_ptr<ElasticBuffer>> retired_;
  std::vector<FlowId> reactivation_order_;  // RR + poll-scan cursor domain
  std::size_t reactivation_cursor_ = 0;
  std::size_t poll_cursor_ = 0;
  double reactivation_tokens_ = 0.0;
  Nanos last_token_refill_{0};
  CeioRuntimeStats rt_stats_;
  // Periodic controller loops, cancelled in the destructor (the scheduler
  // may outlive us; a cancelled handle can never fire into freed state).
  EventHandle poll_timer_;
  EventHandle reactivate_timer_;
  /// One credit-release MMIO doorbell in flight to the NIC.
  struct CreditDoorbell {
    FlowId flow = 0;
    std::int64_t count = 0;
  };
  // Doorbells ring a constant MMIO latency after issue, so due times are
  // non-decreasing: a coalesced stream drains release bursts in one event.
  // Its destructor cancels the armed event, covering datapath teardown.
  CoalescedStream<CreditDoorbell> doorbells_;
};

}  // namespace ceio
