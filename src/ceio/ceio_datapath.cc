#include "ceio/ceio_datapath.h"

#include <algorithm>
#include <cmath>

#include "common/det_map.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace ceio {
namespace {
// Application-posted zero-copy RX buffers (paper §5 post_recv()).
constexpr BufferId kPostedBase = 1ULL << 46;

bool is_pool_buffer(BufferId id) { return id != 0 && id < kSlowLandingBase; }
bool is_slow_landing(BufferId id) {
  return id >= kSlowLandingBase && id < kBypassBufferBase;
}
}  // namespace

CeioDatapath::CeioDatapath(EventScheduler& sched, DmaEngine& dma, MemoryController& mc,
                           BufferPool& host_pool, RmtEngine& rmt, NicMemory& nic_mem,
                           const CeioConfig& config)
    : DatapathBase(sched, dma, mc, host_pool),
      rmt_(rmt),
      nic_mem_(nic_mem),
      config_(config),
      credits_(config.total_credits),
      base_total_credits_(config.total_credits),
      doorbells_(sched, [this](Nanos, CreditDoorbell db) {
        credits_.release(db.flow, db.count);
      }) {
  // Controller loops run on the NIC cores for the lifetime of the runtime.
  poll_timer_ = sched_.schedule_after(config_.poll_interval,
                                      [this]() { controller_poll(); });
  reactivate_timer_ = sched_.schedule_after(config_.reactivate_period,
                                            [this]() { reactivation_round(); });
}

CeioDatapath::~CeioDatapath() {
  sched_.cancel(poll_timer_);
  sched_.cancel(reactivate_timer_);
}

CeioDatapath::Ext* CeioDatapath::ext_of(FlowId id) { return ext_.find(id); }

const CeioDatapath::Ext* CeioDatapath::ext_of(FlowId id) const { return ext_.find(id); }

bool CeioDatapath::in_slow_mode(FlowId id) const {
  const Ext* ext = ext_of(id);
  return ext != nullptr && ext->slow_mode;
}

int CeioDatapath::mpq_level(FlowId id) const {
  const Ext* ext = ext_of(id);
  if (ext == nullptr) return 0;
  int level = 0;
  for (const Bytes threshold : config_.mpq_thresholds) {
    if (ext->bytes_seen >= threshold) ++level;
  }
  return level;
}

std::size_t CeioDatapath::slow_backlog(FlowId id) const {
  const Ext* ext = ext_of(id);
  if (ext == nullptr) return 0;
  return ext->elastic->backlog() + static_cast<std::size_t>(ext->elastic->in_flight()) +
         ext->landed_slow.size();
}

CeioDatapath::SlowDebug CeioDatapath::debug_slow_state(FlowId id) const {
  SlowDebug out;
  const Ext* ext = ext_of(id);
  if (ext == nullptr) return out;
  out.nic_ring = ext->elastic->backlog();
  out.in_flight = ext->elastic->in_flight();
  out.landed = ext->landed_slow.size();
  out.sw_segments = ext->sw.segment_count();
  out.sw_pending = ext->sw.pending();
  out.sw_segment_sum = ext->sw.segment_sum();
  out.lost_fast = ext->lost_fast;
  out.cpu_pumping = ext->cpu_pumping;
  const FlowState* fs = const_cast<CeioDatapath*>(this)->state_of(id);
  if (fs != nullptr && fs->ring) out.fast_ring = fs->ring->size();
  out.sw_head_fast = ext->sw.next() == SwRing::Path::kFast;
  out.slow_pool_free = 0;
  out.host_pool_free = host_pool_.available();
  return out;
}

std::int64_t CeioDatapath::debug_unworked(FlowId id) const {
  const Ext* ext = ext_of(id);
  return ext == nullptr ? 0 : ext->slow_landed_unworked;
}

std::size_t CeioDatapath::debug_open_messages(FlowId id) const {
  const Ext* ext = ext_of(id);
  return ext == nullptr ? 0 : ext->msg_path_counts.size();
}

void CeioDatapath::on_flow_registered(FlowState& fs) {
  const FlowId id = fs.rt.config.id;
  fs.ring = std::make_unique<RxRing>(config_.fast_ring_entries, pool_, "ceio-fast");
  const bool inserted = !ext_.contains(id);
  Ext& ext = ext_[id];
  if (inserted) {
    const std::size_t window = config_.async_drain ? config_.drain_window : 1;
    ext.elastic = std::make_unique<ElasticBuffer>(
        sched_, nic_mem_, dma_, window,
        [this, id](Packet pkt, Nanos now) { on_slow_read_complete(id, std::move(pkt), now); },
        [this, id]() {
          // Pause the drain while too many landed packets sit unconsumed in
          // host memory (they occupy DDIO ways without credits). For
          // involved flows that is the landed queue; for bypass flows it is
          // landed data whose message work has not retired.
          const Ext* e = ext_of(id);
          if (e == nullptr) return true;
          const FlowState* f = const_cast<CeioDatapath*>(this)->state_of(id);
          const bool involved = f == nullptr || f->rt.app->per_packet_cpu();
          if (involved) return e->landed_slow.size() < config_.landed_cap;
          // Bypass: landed-but-unworked slow data shares the flow's LLC
          // budget with its unreleased fast-path credits, so the combined
          // resident footprint stays near the flow's fair share. One
          // exception keeps the system live: when the worker has nothing
          // queued, only draining more can ever complete the message being
          // assembled — the landed data may all belong to an incomplete
          // message whose remainder sits behind this very gate, and closing
          // it would deadlock the flow (completion is the only thing that
          // shrinks the unworked count).
          if (f != nullptr && f->rt.core != nullptr && f->rt.core->idle()) return true;
          const std::int64_t budget = credits_.fair_share();
          return e->unreleased + std::max<std::int64_t>(e->slow_landed_unworked, 0) < budget;
        });
    ext.elastic->set_telemetry(tele_);
    // Rotating driver-posted landing buffers for slow-path drains, disjoint
    // from every pool range.
    ext.next_landing_buffer = kSlowLandingBase + (static_cast<BufferId>(id) << 20);
    reactivation_order_.push_back(id);
  }
  ext.last_packet_at = sched_.now();
  rmt_.install_rule(id, SteerAction::kToHost);
  credits_.add_flows({id});
}

void CeioDatapath::on_flow_unregistered(FlowState& fs) {
  const FlowId id = fs.rt.config.id;
  rmt_.remove_rule(id);
  credits_.remove_flow(id);
  // In-flight DMA-read callbacks reference the elastic buffer; park it until
  // the runtime is destroyed instead of freeing it under them.
  if (Ext* ext = ext_.find(id); ext != nullptr) {
    if (ext->elastic) retired_.push_back(std::move(ext->elastic));
    ext_.erase(id);
  }
  reactivation_order_.erase(
      std::remove(reactivation_order_.begin(), reactivation_order_.end(), id),
      reactivation_order_.end());
}

void CeioDatapath::set_manual_consume(FlowId id, bool manual) {
  Ext* ext = ext_of(id);
  if (ext == nullptr) return;
  ext->manual = manual;
  if (ext->next_posted_id == 0) {
    ext->next_posted_id = kPostedBase + (static_cast<BufferId>(id) << 20);
  }
  if (manual) pump(id);  // sweep anything already landed into the queue
}

std::size_t CeioDatapath::driver_recv(FlowId id, Packet* out, std::size_t max_pkts,
                                      bool eager_drain) {
  FlowState* fs = state_of(id);
  Ext* ext = ext_of(id);
  if (fs == nullptr || ext == nullptr || !ext->manual) return 0;
  manual_pump(*fs, *ext);
  std::size_t n = 0;
  while (n < max_pkts && !ext->driver_queue.empty()) {
    out[n++] = ext->driver_queue.pop_front();
  }
  // Demand kick: the next in-order packet is on the slow path and has not
  // landed — start (or keep) the drain so a later call finds it. async_recv
  // arms the drain even when the queue satisfied the request.
  if (eager_drain || (n < max_pkts && ext->sw.next() == SwRing::Path::kSlow)) {
    kick_drain(id, *ext);
  }
  return n;
}

std::vector<Packet> CeioDatapath::driver_recv(FlowId id, std::size_t max_pkts,  // lint: allow-vector-return
                                              bool eager_drain) {
  std::vector<Packet> out(max_pkts);
  out.resize(driver_recv(id, out.data(), max_pkts, eager_drain));
  return out;
}

std::vector<BufferId> CeioDatapath::driver_post_recv(FlowId id, std::size_t count) {
  std::vector<BufferId> out;
  Ext* ext = ext_of(id);
  if (ext == nullptr) return out;
  if (ext->next_posted_id == 0) {
    ext->next_posted_id = kPostedBase + (static_cast<BufferId>(id) << 20);
  }
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const BufferId buf = ext->next_posted_id++;
    ext->posted.push_back(buf);
    out.push_back(buf);
  }
  return out;
}

void CeioDatapath::driver_complete(FlowId id, const Packet& pkt) {
  FlowState* fs = state_of(id);
  Ext* ext = ext_of(id);
  if (fs == nullptr || ext == nullptr) return;
  if (is_pool_buffer(pkt.host_buffer)) host_pool_.release(pkt.host_buffer);
  if (pkt.host_buffer != 0) mc_.release_buffer(pkt.host_buffer);
  CEIO_T_PATH_DONE(tele_, pkt.flow, pkt.seq, PathHop::kProcessed, sched_.now());
  // Lazy release keys on fast-path buffers only (pool or app-posted); slow
  // landings never consumed a credit.
  if (!is_slow_landing(pkt.host_buffer)) {
    note_processed_for_release(*fs, *ext, pkt);
  } else {
    kick_drain(id, *ext);  // a landed slot freed; the gate may have reopened
  }
  note_processed_message_progress(*fs, pkt, sched_.now());
}

std::size_t CeioDatapath::driver_pending(FlowId id) const {
  const Ext* ext = ext_of(id);
  return ext == nullptr ? 0 : ext->driver_queue.size();
}

void CeioDatapath::apply_total_credits() {
  // Exact at scale 1.0 (the governor-off / sharded-arbitration case): no
  // float round-trip may perturb the installed total.
  credits_.set_total(credit_scale_ == 1.0
                         ? base_total_credits_
                         : std::llround(static_cast<double>(base_total_credits_) *
                                        credit_scale_));
}

void CeioDatapath::set_credit_scale(double scale) {
  if (scale == credit_scale_) return;
  credit_scale_ = scale;
  apply_total_credits();
}

void CeioDatapath::set_landed_caps(std::size_t involved_cap, std::size_t bypass_cap) {
  // The elastic drain gates read these through config_ on every decision, so
  // resizing takes effect at the next drain attempt.
  config_.landed_cap = involved_cap;
  config_.bypass_landed_cap = bypass_cap;
}

void CeioDatapath::on_flow_path_changed(FlowState& fs) {
  const FlowId id = fs.rt.config.id;
  Ext* ext = ext_of(id);
  if (ext == nullptr) return;
  switch (fs.path_override) {
    case policy::FlowPathOverride::kForceSlow:
      if (!ext->slow_mode) {
        ext->slow_mode = true;
        ++rt_stats_.credit_switches_to_slow;
        CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_slow", sched_.now(),
                       static_cast<double>(credits_.credits(id)), id);
        rmt_.update_action(id, SteerAction::kToNicMem);
      }
      kick_drain(id, *ext);
      break;
    case policy::FlowPathOverride::kForceFast:
      if (ext->slow_mode) {
        ext->slow_mode = false;
        ++rt_stats_.switches_back_to_fast;
        CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_fast", sched_.now(),
                       static_cast<double>(credits_.credits(id)), id);
        rmt_.update_action(id, SteerAction::kToHost);
        kick_drain(id, *ext);  // residual slow backlog still drains in order
      }
      break;
    case policy::FlowPathOverride::kAuto:
      break;  // the controller poll resumes normal steering from here
  }
}

std::int64_t CeioDatapath::reenable_threshold() const {
  const auto share = static_cast<double>(credits_.fair_share());
  return std::max<std::int64_t>(config_.release_batch,
                                static_cast<std::int64_t>(share * config_.reenable_fraction));
}

bool CeioDatapath::take_reactivation_token() {
  const Nanos now = sched_.now();
  const double dt = to_seconds(now - last_token_refill_);
  last_token_refill_ = now;
  reactivation_tokens_ = std::min(reactivation_tokens_ + dt * config_.reactivations_per_sec,
                                  config_.reactivation_burst);
  if (reactivation_tokens_ < 1.0) return false;
  reactivation_tokens_ -= 1.0;
  return true;
}

void CeioDatapath::on_packet(Packet pkt) {
  FlowState* fs = state_of(pkt.flow);
  Ext* ext = ext_of(pkt.flow);
  if (fs == nullptr || ext == nullptr) return;  // unknown flow: no rule, drop
  ext->last_packet_at = sched_.now();
  // Traffic-triggered reactivation (§4.1 Q3): a reclaimed flow that shows
  // traffic again gets its credits back through Algorithm 1 — but the
  // controller can only run so many reactivations per second. Fast flow
  // churn overruns this budget and flows stay on the slow path (Figure 12).
  if (!credits_.active(pkt.flow) && take_reactivation_token()) {
    credits_.reactivate(pkt.flow);
    ++rt_stats_.reactivations;
    CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "reactivate", sched_.now(),
                   static_cast<double>(credits_.credits(pkt.flow)), pkt.flow);
  }
  ext->bytes_seen += pkt.size;
  const SteerAction action = rmt_.steer(pkt);
  switch (action) {
    case SteerAction::kToHost:
      deliver_fast_path(*fs, *ext, std::move(pkt));
      break;
    case SteerAction::kToNicMem:
      deliver_slow_path(*fs, *ext, std::move(pkt));
      break;
    case SteerAction::kDrop:
      drop_packet(*fs, pkt);
      break;
  }
}

void CeioDatapath::deliver_fast_path(FlowState& fs, Ext& ext, Packet pkt) {
  const FlowId id = fs.rt.config.id;
  const bool involved = fs.rt.app->per_packet_cpu();
  BufferId buffer = 0;
  if (involved) {
    if (!ext.posted.empty()) {
      // Zero-copy: land directly in an application-posted buffer.
      buffer = ext.posted.pop_front();
    } else {
      const auto acquired = host_pool_.acquire();
      if (!acquired) {
        // Host pool exhausted (should not happen when the pool covers
        // C_total); treat like a ring overflow.
        drop_packet(fs, pkt);
        return;
      }
      buffer = *acquired;
    }
  } else {
    buffer = fs.next_bypass_buffer++;
  }
  // The packet is now committed to the fast path: consume a credit and
  // record the segment for ordering.
  credits_.consume(id, 1);
  ++ext.unreleased;
  ++fs.stats.fast_path_pkts;
  if (involved) ext.sw.note_steered(/*fast=*/true);
  pkt.host_buffer = buffer;
  // The controller's match-action + credit work is pipelined ahead of the
  // DMA issue: it delays the packet but does not throttle the stream.
  const bool expect_read = fs.rt.app->reads_delivered_data();
  // Park the packet: both hops of the pipelined issue capture its 4-byte
  // handle, keeping the scheduler callback and the DMA completion inline.
  const PacketRef ref = pool_.make(std::move(pkt));
  sched_.schedule_after(config_.controller_latency, [this, id, buffer, expect_read, ref]() {
    Packet* parked = pool_.get(ref);
    CEIO_T_PATH_HOP(tele_, parked->flow, parked->seq, PathHop::kDmaIssue, sched_.now());
    dma_.write_to_host(
        buffer, parked->size, /*ddio=*/true,
        [this, id, ref](Nanos) { on_fast_landed(id, ref); }, expect_read);
  });
}

void CeioDatapath::on_fast_landed(FlowId flow, PacketRef ref) {
  Packet pkt = pool_.take(ref);
  FlowState* fs = state_of(flow);
  Ext* ext = ext_of(flow);
  if (fs == nullptr || ext == nullptr) {
    if (is_pool_buffer(pkt.host_buffer)) {
      host_pool_.release(pkt.host_buffer);
    }
    return;
  }
  if (fs->rt.source != nullptr) fs->rt.source->notify_delivered(pkt);
  if (!fs->rt.app->per_packet_cpu()) {
    // Bypass flow: message progress at DMA granularity; credits replenish
    // once the message *work* retires (write-with-immediate -> driver ->
    // app processing -> ownership returns), via on_message_work_done.
    CEIO_T_PATH_DONE(tele_, pkt.flow, pkt.seq, PathHop::kHostLanded, sched_.now());
    ++ext->msg_path_counts[pkt.message_id].first;
    note_delivered_message_progress(*fs, pkt, sched_.now());
    return;
  }
  CEIO_T_PATH_HOP(tele_, pkt.flow, pkt.seq, PathHop::kHostLanded, sched_.now());
  if (!fs->ring->post(pkt)) {
    // Ring overflow after steering: the SW ring already recorded the
    // segment entry, so account the loss for the consumer to skip.
    ++ext->lost_fast;
    host_pool_.release(pkt.host_buffer);
    mc_.release_buffer(pkt.host_buffer);
    drop_packet(*fs, pkt);
    return;
  }
  pump(flow);
}

void CeioDatapath::deliver_slow_path(FlowState& fs, Ext& ext, Packet pkt) {
  const FlowId id = fs.rt.config.id;
  const bool involved = fs.rt.app->per_packet_cpu();
  const bool message_end = pkt.last_in_message;
  if (!ext.elastic->buffer_packet(pkt)) {
    drop_packet(fs, pkt);
    return;
  }
  ++fs.stats.slow_path_pkts;
  CEIO_T_PATH_HOP(tele_, pkt.flow, pkt.seq, PathHop::kNicBuffered, sched_.now());
  if (involved) ext.sw.note_steered(/*fast=*/false);
  // Drain triggers: eager with the async optimization; event-driven on
  // message completion for bypass flows (write-with-immediate).
  if (config_.async_drain || (!involved && message_end)) {
    kick_drain(id, ext);
  }
  if (involved) pump(id);
}

void CeioDatapath::kick_drain(FlowId /*flow*/, Ext& ext) { ext.elastic->drain(); }

void CeioDatapath::on_slow_read_complete(FlowId flow, Packet pkt, Nanos /*now*/) {
  // The PCIe read completed; finish the landing as a host memory write so
  // IIO/LLC accounting applies (the drain window keeps this footprint tiny).
  FlowState* fs = state_of(flow);
  if (fs == nullptr) return;
  if (!fs->rt.app->per_packet_cpu()) {
    const BufferId buffer = fs->next_bypass_buffer++;
    pkt.host_buffer = buffer;
    mc_.dma_write(
        buffer, pkt.size, /*ddio=*/true,
        [this, flow, pkt = std::move(pkt)](Nanos done) mutable {
          FlowState* fs2 = state_of(flow);
          Ext* ext2 = ext_of(flow);
          if (fs2 == nullptr) return;
          if (ext2 != nullptr) {
            ++ext2->slow_landed_unworked;
            ++ext2->msg_path_counts[pkt.message_id].second;
          }
          CEIO_T_PATH_DONE(tele_, pkt.flow, pkt.seq, PathHop::kHostLanded, done);
          if (fs2->rt.source != nullptr) fs2->rt.source->notify_delivered(pkt);
          note_delivered_message_progress(*fs2, pkt, done);
        },
        fs->rt.app->reads_delivered_data());
    return;
  }
  land_slow_involved(flow, std::move(pkt));
}

void CeioDatapath::land_slow_involved(FlowId flow, Packet pkt) {
  FlowState* fs = state_of(flow);
  Ext* ext = ext_of(flow);
  if (fs == nullptr || ext == nullptr) return;
  // Driver-posted landing buffer: a rotating window of ids (the drain gate
  // bounds how many are live at once, so recycling is safe).
  const BufferId base = kSlowLandingBase + (static_cast<BufferId>(flow) << 20);
  pkt.host_buffer = base + (ext->next_landing_buffer++ - base) % kLandingWindow;
  mc_.dma_write(pkt.host_buffer, pkt.size, /*ddio=*/true,
                [this, flow, pkt = std::move(pkt)](Nanos) mutable {
                  FlowState* fs2 = state_of(flow);
                  Ext* ext2 = ext_of(flow);
                  if (fs2 == nullptr || ext2 == nullptr) return;
                  CEIO_T_PATH_HOP(tele_, pkt.flow, pkt.seq, PathHop::kHostLanded, sched_.now());
                  if (fs2->rt.source != nullptr) fs2->rt.source->notify_delivered(pkt);
                  ext2->landed_slow.push_back(std::move(pkt));
                  pump(flow);
                });
}

void CeioDatapath::manual_pump(FlowState& fs, Ext& ext) {
  // Move every in-order landed packet into the driver queue; stop at the
  // first packet that has not landed yet (in PCIe flight or still on-NIC).
  for (;;) {
    switch (ext.sw.next()) {
      case SwRing::Path::kNone:
        return;
      case SwRing::Path::kFast:
        if (!fs.ring->empty()) {
          auto pkt = fs.ring->poll();
          ext.sw.consumed();
          ext.driver_queue.push_back(std::move(*pkt));
          continue;
        }
        if (ext.lost_fast > 0) {
          --ext.lost_fast;
          ext.sw.consumed();
          continue;
        }
        return;
      case SwRing::Path::kSlow:
        if (!ext.landed_slow.empty()) {
          ext.driver_queue.push_back(ext.landed_slow.pop_front());
          ext.sw.consumed();
          continue;
        }
        return;  // awaiting drain — recv()/async_recv() decide when to kick
    }
  }
}

void CeioDatapath::pump(FlowId flow) {
  FlowState* fs = state_of(flow);
  Ext* ext = ext_of(flow);
  if (fs == nullptr || ext == nullptr) return;
  if (ext->manual) {
    manual_pump(*fs, *ext);
    return;
  }
  if (ext->cpu_pumping) return;
  for (;;) {
    switch (ext->sw.next()) {
      case SwRing::Path::kNone:
        return;
      case SwRing::Path::kFast: {
        if (!fs->ring->empty()) {
          auto pkt = fs->ring->poll();
          ext->sw.consumed();
          process_one(*fs, *ext, std::move(*pkt), /*was_slow=*/false);
          return;
        }
        if (ext->lost_fast > 0) {
          // A post-steering loss: skip its ordering slot.
          --ext->lost_fast;
          ext->sw.consumed();
          continue;
        }
        return;  // still in flight over PCIe
      }
      case SwRing::Path::kSlow: {
        if (!ext->landed_slow.empty()) {
          Packet pkt = ext->landed_slow.pop_front();
          ext->sw.consumed();
          process_one(*fs, *ext, std::move(pkt), /*was_slow=*/true);
          return;
        }
        // Demand-driven drain (sync recv()): fetch the segment now.
        kick_drain(flow, *ext);
        return;
      }
    }
  }
}

void CeioDatapath::process_one(FlowState& fs, Ext& ext, Packet pkt, bool was_slow) {
  ext.cpu_pumping = true;
  const AppPacketCosts costs = fs.rt.app->packet_costs(pkt);
  PacketWork work;
  work.buffer = pkt.host_buffer;
  work.size = pkt.size;
  work.app_cost = costs.app_cost;
  work.read_buffer = costs.read_buffer;
  work.copy_to = costs.copy_to;
  if (!config_.phase_exclusive && (was_slow || ext.sw.segment_count() > 1)) {
    // Ablation: without phase exclusivity the driver tracks and re-sorts
    // per-packet metadata whenever paths interleave.
    work.app_cost += config_.reorder_penalty;
  }
  const FlowId flow = fs.rt.config.id;
  const bool slow_buffer = was_slow;
  CEIO_T_PATH_HOP(tele_, pkt.flow, pkt.seq, PathHop::kCpuStart, sched_.now());
  const PacketRef ref = pool_.make(std::move(pkt));
  work.on_done = [this, flow, ref, slow_buffer](Nanos done) {
    Packet done_pkt = pool_.take(ref);
    FlowState* fs2 = state_of(flow);
    Ext* ext2 = ext_of(flow);
    if (done_pkt.host_buffer != 0) {
      if (!slow_buffer) host_pool_.release(done_pkt.host_buffer);
      mc_.release_buffer(done_pkt.host_buffer);
    }
    if (fs2 == nullptr || ext2 == nullptr) return;
    CEIO_T_PATH_DONE(tele_, done_pkt.flow, done_pkt.seq, PathHop::kProcessed, done);
    // Lazy release keys strictly on *fast-path* ring-head advancement:
    // slow-path packets never consumed a credit, so their processing must
    // not replenish credits whose buffers are still held in the fast ring.
    if (!slow_buffer) note_processed_for_release(*fs2, *ext2, done_pkt);
    if (slow_buffer) kick_drain(flow, *ext2);  // the gate may have reopened
    note_processed_message_progress(*fs2, done_pkt, done);
    ext2->cpu_pumping = false;
    pump(flow);
  };
  fs.rt.core->submit(std::move(work));
}

void CeioDatapath::on_message_work_done(FlowState& fs, const Packet& last_pkt, Nanos done) {
  (void)done;
  if (fs.rt.app->per_packet_cpu()) return;  // involved flows release per batch
  Ext* ext = ext_of(fs.rt.config.id);
  if (ext == nullptr) return;
  // The worker consumed the chunk: its slow-path landings no longer pin the
  // drain gate, and the chunk's credits return to the controller.
  std::int32_t fast_cnt = 0;
  std::int32_t slow_cnt = 0;
  if (const auto it = ext->msg_path_counts.find(last_pkt.message_id);
      it != ext->msg_path_counts.end()) {
    fast_cnt = it->second.first;
    slow_cnt = it->second.second;
    ext->msg_path_counts.erase(it);
  }
  ext->slow_landed_unworked =
      std::max<std::int64_t>(ext->slow_landed_unworked - slow_cnt, 0);
  kick_drain(fs.rt.config.id, *ext);
  // Release exactly this message's fast-path credits; later messages'
  // packets are still unworked and must keep theirs pinned.
  const std::int64_t count = std::min<std::int64_t>(ext->unreleased, fast_cnt);
  if (count <= 0) return;
  ext->unreleased -= count;
  schedule_credit_release(fs.rt.config.id, count);
}

void CeioDatapath::note_processed_for_release(FlowState& fs, Ext& ext, const Packet& pkt) {
  ++ext.processed_since_release;
  const bool batch_full = ext.processed_since_release >= config_.release_batch;
  if ((batch_full || pkt.last_in_message) && ext.unreleased > 0) {
    const std::int64_t count = std::min(ext.unreleased, ext.processed_since_release);
    ext.unreleased -= count;
    ext.processed_since_release = 0;
    schedule_credit_release(fs.rt.config.id, count);
  } else if (batch_full) {
    ext.processed_since_release = 0;
  }
}

void CeioDatapath::schedule_credit_release(FlowId flow, std::int64_t count) {
  doorbells_.push(sched_.now() + config_.doorbell_latency, CreditDoorbell{flow, count});
}

void CeioDatapath::controller_poll() {
  const Nanos now = sched_.now();
  const std::size_t n = reactivation_order_.size();
  const std::size_t scan = std::min(n, config_.poll_scan_limit);
  for (std::size_t i = 0; i < scan; ++i) {
    poll_cursor_ = (poll_cursor_ + 1) % n;
    const FlowId id = reactivation_order_[poll_cursor_];
    Ext* ext = ext_of(id);
    if (ext != nullptr) poll_flow(id, *ext, now);
  }
  poll_timer_ = sched_.schedule_after(config_.poll_interval,
                                      [this]() { controller_poll(); });
}

void CeioDatapath::poll_flow(FlowId id, Ext& ext, Nanos now) {
  {
    FlowState* fs = state_of(id);
    if (fs == nullptr) return;
    // Policy-layer steering override: force values pin the steering, so the
    // poll must neither exile a forced-fast flow nor readmit a forced-slow
    // one. kAuto leaves every branch exactly as it always was.
    const policy::FlowPathOverride ov = fs->path_override;

    // Inactivity reclaim (Q3): idle flows surrender their credits.
    if (credits_.active(id) && now - ext.last_packet_at > config_.inactive_timeout) {
      credits_.reclaim(id);
      ext.bytes_seen = Bytes{0};  // PIAS aging: an idle flow regains top priority
      ++rt_stats_.inactive_reclaims;
      CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "inactive_reclaim", now,
                     static_cast<double>(credits_.free_pool()), id);
      if (!ext.slow_mode && ov != policy::FlowPathOverride::kForceFast) {
        ext.slow_mode = true;
        rmt_.update_action(id, SteerAction::kToNicMem);
      }
      return;
    }

    // CCA trigger (§4.1 Q2): the NIC detects that the network's production
    // rate exceeds the CPU's / memory controller's consumption rate. For
    // involved flows the unreleased-credit count approximates landed-but-
    // unprocessed fast-path packets; the slow backlog adds the elastic
    // buffer's content. Hysteresis: once marking starts it continues until
    // the backlog drains to the low watermark — without it the sender
    // settles into an equilibrium hovering at the threshold and the flow
    // never drains enough to regain the fast path.
    const bool involved = fs->rt.app->per_packet_cpu();
    const std::size_t slow_bk = slow_backlog(id);
    if (involved) {
      const std::size_t total_backlog =
          slow_bk + static_cast<std::size_t>(std::max<std::int64_t>(
                        ext.unreleased - config_.release_batch, 0));
      if (total_backlog > config_.slow_cca_threshold) ext.cca_marking = true;
      if (total_backlog <= config_.reenable_backlog) ext.cca_marking = false;
    } else {
      // Bypass flows legitimately park whole messages in the elastic
      // buffer, so the trigger threshold is deeper — but once crossed, the
      // same drain-to-empty hysteresis applies: the sender is held back
      // until the on-NIC backlog clears and the flow returns to the
      // credit-gated fast path, where chunk data stays LLC-resident for
      // the worker.
      if (slow_bk > config_.bypass_cca_threshold) ext.cca_marking = true;
      if (slow_bk <= config_.bypass_cca_threshold / 2) ext.cca_marking = false;
    }
    if (ext.cca_marking &&
        (ext.last_cca_at < Nanos{0} || now - ext.last_cca_at >= config_.cca_min_gap)) {
      if (fs->rt.source != nullptr) fs->rt.source->notify_host_congestion();
      ext.last_cca_at = now;
      ++rt_stats_.cca_triggers;
      CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "cca_trigger", now,
                     static_cast<double>(slow_bk), id);
    }
    ext.slow_backlog_last_poll = slow_bk;

    if (config_.policy == SteerPolicy::kMpqPias) {
      // PIAS-style decision: priority (not credits) picks the path. Long
      // flows decay below the fast levels and stay exiled until idleness
      // resets their byte count — exactly the behaviour §4.1 rejects.
      const bool want_slow =
          ov == policy::FlowPathOverride::kForceSlow ||
          (ov != policy::FlowPathOverride::kForceFast &&
           mpq_level(id) >= config_.mpq_fast_levels);
      if (want_slow && !ext.slow_mode) {
        ext.slow_mode = true;
        ++rt_stats_.credit_switches_to_slow;
        CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_slow", now,
                       static_cast<double>(mpq_level(id)), id);
        rmt_.update_action(id, SteerAction::kToNicMem);
      } else if (!want_slow && ext.slow_mode &&
                 slow_bk <= config_.reenable_backlog) {
        ext.slow_mode = false;
        ++rt_stats_.switches_back_to_fast;
        CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_fast", now,
                       static_cast<double>(mpq_level(id)), id);
        rmt_.update_action(id, SteerAction::kToHost);
      }
      if (ext.slow_mode) kick_drain(id, ext);
      return;
    }

    if (!ext.slow_mode) {
      if (ov != policy::FlowPathOverride::kForceFast && credits_.credits(id) <= 0) {
        ext.slow_mode = true;
        ++rt_stats_.credit_switches_to_slow;
        CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_slow", now,
                       static_cast<double>(credits_.credits(id)), id);
        rmt_.update_action(id, SteerAction::kToNicMem);
      }
      return;
    }

    // Slow mode: keep the drain moving; re-enable the fast path once the
    // balance recovers. Involved flows additionally wait for the slow
    // backlog to drain (phase exclusivity for ordering); bypass flows don't
    // need it — message accounting tolerates mixed paths, and waiting would
    // trap small-packet flows behind the request-rate-bound drain.
    kick_drain(id, ext);
    if (ov == policy::FlowPathOverride::kForceSlow) return;
    const bool drained = !involved || slow_bk <= config_.reenable_backlog;
    if (drained && credits_.active(id) && credits_.credits(id) >= reenable_threshold()) {
      ext.slow_mode = false;
      ++rt_stats_.switches_back_to_fast;
      CEIO_T_INSTANT(tele_, TraceTrack::kCreditController, "switch_to_fast", now,
                     static_cast<double>(credits_.credits(id)), id);
      rmt_.update_action(id, SteerAction::kToHost);
    }
  }
}

void CeioDatapath::set_telemetry(Telemetry* tele) {
  DatapathBase::set_telemetry(tele);
  ext_.for_each([tele](FlowId, Ext& ext) {
    if (ext.elastic) ext.elastic->set_telemetry(tele);
  });
}

void CeioDatapath::register_metrics(MetricRegistry& registry) {
  DatapathBase::register_metrics(registry);
  registry.add_gauge("ceio.credits.free_pool",
                     [this]() { return static_cast<double>(credits_.free_pool()); });
  registry.add_gauge("ceio.credits.fair_share",
                     [this]() { return static_cast<double>(credits_.fair_share()); });
  registry.add_gauge("ceio.credits.active_flows",
                     [this]() { return static_cast<double>(credits_.active_count()); });
  registry.add_gauge("ceio.credits.balance_sum",
                     [this]() { return static_cast<double>(credits_.balance_sum()); });
  registry.add_gauge("ceio.slow.backlog", [this]() {
    std::size_t total = 0;
    ext_.for_each([&](FlowId id, const Ext&) { total += slow_backlog(id); });
    return static_cast<double>(total);
  });
  registry.add_gauge("ceio.slow.flows_in_slow_mode", [this]() {
    std::size_t total = 0;
    ext_.for_each([&](FlowId, const Ext& ext) { total += ext.slow_mode ? 1u : 0u; });
    return static_cast<double>(total);
  });
  registry.add_gauge("ceio.rt.cca_triggers",
                     [this]() { return static_cast<double>(rt_stats_.cca_triggers); });
  registry.add_gauge("ceio.rt.reactivations",
                     [this]() { return static_cast<double>(rt_stats_.reactivations); });
  registry.add_gauge("ceio.rt.switches_to_slow", [this]() {
    return static_cast<double>(rt_stats_.credit_switches_to_slow);
  });
  registry.add_gauge("ceio.rt.switches_to_fast",
                     [this]() { return static_cast<double>(rt_stats_.switches_back_to_fast); });
}

void CeioDatapath::reactivation_round() {
  if (!reactivation_order_.empty()) {
    int granted = 0;
    std::size_t scanned = 0;
    while (granted < config_.reactivate_per_round &&
           scanned < reactivation_order_.size()) {
      reactivation_cursor_ = (reactivation_cursor_ + 1) % reactivation_order_.size();
      const FlowId id = reactivation_order_[reactivation_cursor_];
      ++scanned;
      if (credits_.active(id)) continue;
      Ext* ext = ext_of(id);
      if (ext == nullptr) continue;
      credits_.reactivate(id);
      ++rt_stats_.reactivations;
      ++granted;
      // The freshly granted flow may resume the fast path once drained; the
      // poll loop performs the actual switch.
    }
  }
  reactivate_timer_ = sched_.schedule_after(config_.reactivate_period,
                                            [this]() { reactivation_round(); });
}

}  // namespace ceio
