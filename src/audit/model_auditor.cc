#include "audit/model_auditor.h"

#include <utility>

namespace ceio {

void ModelAuditor::register_invariant(std::string layer, std::string name, Check check) {
  invariants_.push_back(Invariant{std::move(layer), std::move(name), std::move(check), 0});
}

std::size_t ModelAuditor::check_all(Nanos now) {
  std::size_t fresh = 0;
  ++sweeps_;
  for (auto& inv : invariants_) {
    if (inv.recorded >= kMaxRecordedPerInvariant) continue;
    auto detail = inv.check(now);
    if (!detail) continue;
    ++inv.recorded;
    ++fresh;
    violations_.push_back(AuditViolation{inv.layer, inv.name, std::move(*detail), now});
  }
  return fresh;
}

void ModelAuditor::clear_violations() {
  violations_.clear();
  for (auto& inv : invariants_) inv.recorded = 0;
}

std::string ModelAuditor::summary() const {
  if (violations_.empty()) return "ok";
  std::string out;
  for (const auto& v : violations_) {
    if (!out.empty()) out += '\n';
    out += v.layer;
    out += '/';
    out += v.name;
    out += " @";
    out += std::to_string(v.at.count());
    out += ": ";
    out += v.detail;
  }
  return out;
}

}  // namespace ceio
