// The standard cross-layer invariant pack.
//
// Each invariant family is split into a pure predicate over a state
// snapshot (`check_*`) and a registration helper that binds the predicate
// to a state probe (`register_*_invariants`). The testbed binds probes to
// its live models (`register_standard_invariants`); fault-injection tests
// bind them to synthetic state they can corrupt, proving every predicate
// actually fires — the models themselves guard these invariants, so a
// healthy build cannot demonstrate a violation end-to-end.
//
// The families:
//   * conservation — bytes moved by DMA never exceed bytes the NIC
//     accepted, and writes landed by the memory controller never exceed
//     writes the DMA engine issued (NIC -> PCIe -> host).
//   * llc — DDIO residency within the DDIO-way partition capacity.
//   * iio — IIO staging-buffer occupancy within [0, capacity].
//   * dma-window — read requests = completions + in-flight; the in-flight
//     count respects the outstanding window; queueing only under a full
//     window; write completions never exceed issues.
//   * credits — the CEIO ledger never mints credits (Algorithm 1):
//     balances + free pool never exceed C_total.
//   * time — the scheduler clock is monotone across sweeps.
//   * ring — RX descriptor rings keep head <= tail <= head + capacity.
//   * sw-ring — the CEIO SW ring's per-segment counts sum to its pending
//     packet count (ordering metadata agrees with occupancy).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "audit/model_auditor.h"
#include "common/units.h"

namespace ceio {

class Testbed;

/// Counter snapshot for NIC -> PCIe -> host byte conservation.
struct ConservationCounters {
  Bytes nic_bytes{0};        // accepted by the NIC RX pipeline (cumulative)
  Bytes dma_write_bytes{0};  // fast-path DMA writes issued
  Bytes dma_read_bytes{0};   // slow-path DMA reads issued
  std::int64_t dma_writes = 0;      // DMA write ops issued
  std::int64_t dma_reads = 0;       // DMA read ops issued (slow-path drains
                                    // also land via a host memory write)
  std::int64_t mc_ddio_writes = 0;  // write ops landed via DDIO
  std::int64_t mc_dram_writes = 0;  // write ops landed via DRAM
};

struct LlcDdioState {
  std::size_t occupancy = 0;  // DDIO-resident buffers
  std::size_t capacity = 0;   // the DDIO-way partition, in buffers
};

struct IioState {
  Bytes occupancy{0};
  Bytes capacity{0};
};

struct DmaWindowState {
  std::int64_t reads = 0;
  std::int64_t reads_completed = 0;
  std::int64_t writes = 0;
  std::int64_t writes_completed = 0;
  int outstanding = 0;
  int max_outstanding = 0;
  std::size_t queued = 0;
};

struct CreditLedgerState {
  std::int64_t balance_sum = 0;  // free pool + all flow balances
  std::int64_t free_pool = 0;
  std::int64_t total = 0;  // C_total (Eq. 1)
};

struct RingState {
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  std::size_t capacity = 0;
};

struct SwRingState {
  std::uint64_t segment_sum = 0;  // sum of per-segment packet counts
  std::uint64_t pending = 0;      // packets steered but not consumed
};

/// Per-tenant DDIO accounting snapshot (multi-tenant runs; src/tenant/).
struct TenantLlcState {
  std::vector<std::size_t> occupancy;  // per-tenant DDIO-resident buffers
  std::vector<std::size_t> capacity;   // per-tenant way-slice capacity
  std::size_t global_occupancy = 0;    // the cache's single DDIO counter
};

// ---- Pure predicates (nullopt = invariant holds) ----

std::optional<std::string> check_conservation(const ConservationCounters& c);
std::optional<std::string> check_llc(const LlcDdioState& s);
std::optional<std::string> check_iio(const IioState& s);
std::optional<std::string> check_dma_window(const DmaWindowState& s);
std::optional<std::string> check_credits(const CreditLedgerState& s);
std::optional<std::string> check_ring(const RingState& s);
std::optional<std::string> check_sw_ring(const SwRingState& s);
/// Per-tenant occupancies must sum to the global DDIO occupancy.
std::optional<std::string> check_tenant_llc_sum(const TenantLlcState& s);
/// No tenant may exceed its way-slice capacity.
std::optional<std::string> check_tenant_llc_bound(const TenantLlcState& s);

// ---- Probe-based registration (one invariant family each) ----

void register_conservation_invariants(ModelAuditor& auditor,
                                      std::function<ConservationCounters()> probe);
void register_llc_invariants(ModelAuditor& auditor, std::function<LlcDdioState()> probe);
void register_iio_invariants(ModelAuditor& auditor, std::function<IioState()> probe);
void register_dma_window_invariants(ModelAuditor& auditor,
                                    std::function<DmaWindowState()> probe);
void register_credit_invariants(ModelAuditor& auditor,
                                std::function<CreditLedgerState()> probe);
/// Clock monotonicity: the `now` of each sweep must be non-decreasing.
void register_time_invariant(ModelAuditor& auditor);
void register_ring_invariants(ModelAuditor& auditor, std::string name,
                              std::function<RingState()> probe);
void register_sw_ring_invariants(ModelAuditor& auditor, std::string name,
                                 std::function<SwRingState()> probe);
/// Registers both tenant-LLC invariants ("tenant-ddio-sum" and
/// "tenant-way-bound") against one shared probe.
void register_tenant_llc_invariants(ModelAuditor& auditor,
                                    std::function<TenantLlcState()> probe);

/// Binds the whole pack to a live testbed: every family above wired to the
/// real models, plus per-flow RX-ring and SW-ring sweeps that follow flows
/// as they are added and removed. Credit/SW-ring invariants are only
/// registered when the testbed runs the CEIO datapath.
void register_standard_invariants(ModelAuditor& auditor, Testbed& bed);

}  // namespace ceio
