// Cross-layer model invariant auditor (runtime counterpart of the unit
// types in common/units.h).
//
// The simulator's layers each maintain counters that must agree with one
// another — bytes the NIC accepted bound the bytes the DMA engine may move,
// DDIO residency is bounded by the partition, the credit ledger must never
// mint credits, ring head/tail counters must stay coherent. A bug in any
// one layer shows up as a *cross*-layer disagreement long before it shows
// up in a figure, so the auditor sweeps registered checks at simulated-time
// boundaries and records every failure with the layer, invariant name and
// sweep time.
//
// Checks are read-only observers: they must not mutate model state, so a
// sweep cannot perturb simulation results — runs are bit-identical with and
// without auditing enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace ceio {

/// One recorded invariant failure.
struct AuditViolation {
  std::string layer;   // which model layer ("pcie", "host", "ceio", ...)
  std::string name;    // which invariant within the layer
  std::string detail;  // human-readable description of the disagreement
  Nanos at{0};         // simulated time of the sweep that caught it
};

class ModelAuditor {
 public:
  /// A check returns nullopt while the invariant holds, or a detail string
  /// describing the violation. `now` is the sweep time, for time-keyed
  /// checks such as clock monotonicity.
  using Check = std::function<std::optional<std::string>(Nanos now)>;

  void register_invariant(std::string layer, std::string name, Check check);

  /// Runs every registered check at simulated time `now`; returns the
  /// number of new violations recorded. A persistently broken invariant is
  /// recorded at most kMaxRecordedPerInvariant times so the log stays
  /// bounded over long runs.
  std::size_t check_all(Nanos now);

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  std::size_t invariant_count() const { return invariants_.size(); }
  std::int64_t sweeps() const { return sweeps_; }
  void clear_violations();

  /// "ok" or one line per recorded violation ("layer/name @t: detail").
  std::string summary() const;

  static constexpr int kMaxRecordedPerInvariant = 8;

 private:
  struct Invariant {
    std::string layer;
    std::string name;
    Check check;
    int recorded = 0;  // violations recorded for this invariant so far
  };

  std::vector<Invariant> invariants_;
  std::vector<AuditViolation> violations_;
  std::int64_t sweeps_ = 0;
};

}  // namespace ceio
