#include "audit/invariants.h"

#include <utility>

#include "iopath/testbed.h"

namespace ceio {

namespace {

std::string i64(std::int64_t v) { return std::to_string(v); }

}  // namespace

// ---- Pure predicates ----

std::optional<std::string> check_conservation(const ConservationCounters& c) {
  const Bytes moved = c.dma_write_bytes + c.dma_read_bytes;
  if (moved > c.nic_bytes) {
    return "DMA moved " + i64(moved.count()) + " B but the NIC only accepted " +
           i64(c.nic_bytes.count()) + " B";
  }
  // Every memory-controller landing is either a DMA write or the host-side
  // landing of a completed slow-path DMA read (CEIO drains).
  const std::int64_t landed = c.mc_ddio_writes + c.mc_dram_writes;
  if (landed > c.dma_writes + c.dma_reads) {
    return "memory controller landed " + i64(landed) + " writes but DMA only issued " +
           i64(c.dma_writes) + " writes + " + i64(c.dma_reads) + " reads";
  }
  return std::nullopt;
}

std::optional<std::string> check_llc(const LlcDdioState& s) {
  if (s.occupancy > s.capacity) {
    return "DDIO residency " + i64(static_cast<std::int64_t>(s.occupancy)) +
           " buffers exceeds the partition capacity " +
           i64(static_cast<std::int64_t>(s.capacity));
  }
  return std::nullopt;
}

std::optional<std::string> check_iio(const IioState& s) {
  if (s.occupancy < Bytes{0}) {
    return "IIO occupancy negative: " + i64(s.occupancy.count()) + " B";
  }
  if (s.occupancy > s.capacity) {
    return "IIO occupancy " + i64(s.occupancy.count()) + " B exceeds capacity " +
           i64(s.capacity.count()) + " B";
  }
  return std::nullopt;
}

std::optional<std::string> check_dma_window(const DmaWindowState& s) {
  if (s.outstanding < 0 || s.outstanding > s.max_outstanding) {
    return "outstanding reads " + i64(s.outstanding) + " outside window [0, " +
           i64(s.max_outstanding) + "]";
  }
  if (s.reads != s.reads_completed + s.outstanding) {
    return "read ledger: issued " + i64(s.reads) + " != completed " + i64(s.reads_completed) +
           " + in-flight " + i64(s.outstanding);
  }
  if (s.queued > 0 && s.outstanding < s.max_outstanding) {
    return i64(static_cast<std::int64_t>(s.queued)) +
           " reads queued while the window has room (" + i64(s.outstanding) + "/" +
           i64(s.max_outstanding) + ")";
  }
  if (s.writes_completed > s.writes) {
    return "write ledger: completed " + i64(s.writes_completed) + " > issued " + i64(s.writes);
  }
  return std::nullopt;
}

std::optional<std::string> check_credits(const CreditLedgerState& s) {
  // Balances may undershoot (poll-lag overshoot is tolerated by design) but
  // the ledger must never mint credits beyond C_total.
  if (s.balance_sum > s.total) {
    return "ledger minted credits: balances + pool = " + i64(s.balance_sum) + " > C_total " +
           i64(s.total);
  }
  if (s.free_pool > s.total) {
    return "free pool " + i64(s.free_pool) + " exceeds C_total " + i64(s.total);
  }
  return std::nullopt;
}

std::optional<std::string> check_ring(const RingState& s) {
  if (s.head > s.tail) {
    return "head " + i64(static_cast<std::int64_t>(s.head)) + " ahead of tail " +
           i64(static_cast<std::int64_t>(s.tail));
  }
  if (s.tail - s.head > s.capacity) {
    return "occupancy " + i64(static_cast<std::int64_t>(s.tail - s.head)) +
           " exceeds capacity " + i64(static_cast<std::int64_t>(s.capacity));
  }
  return std::nullopt;
}

std::optional<std::string> check_sw_ring(const SwRingState& s) {
  if (s.segment_sum != s.pending) {
    return "segment counts sum to " + i64(static_cast<std::int64_t>(s.segment_sum)) +
           " but " + i64(static_cast<std::int64_t>(s.pending)) + " packets are pending";
  }
  return std::nullopt;
}

std::optional<std::string> check_tenant_llc_sum(const TenantLlcState& s) {
  std::size_t sum = 0;
  for (const std::size_t occ : s.occupancy) sum += occ;
  if (sum != s.global_occupancy) {
    return "per-tenant DDIO occupancies sum to " + i64(static_cast<std::int64_t>(sum)) +
           " but the global counter reads " +
           i64(static_cast<std::int64_t>(s.global_occupancy));
  }
  return std::nullopt;
}

std::optional<std::string> check_tenant_llc_bound(const TenantLlcState& s) {
  for (std::size_t t = 0; t < s.occupancy.size(); ++t) {
    if (s.occupancy[t] > s.capacity[t]) {
      return "tenant " + i64(static_cast<std::int64_t>(t)) + " holds " +
             i64(static_cast<std::int64_t>(s.occupancy[t])) +
             " buffers but its way slice only fits " +
             i64(static_cast<std::int64_t>(s.capacity[t]));
    }
  }
  return std::nullopt;
}

// ---- Probe-based registration ----

void register_conservation_invariants(ModelAuditor& auditor,
                                      std::function<ConservationCounters()> probe) {
  auditor.register_invariant("pcie", "byte-conservation",
                             [probe = std::move(probe)](Nanos) { return check_conservation(probe()); });
}

void register_llc_invariants(ModelAuditor& auditor, std::function<LlcDdioState()> probe) {
  auditor.register_invariant("host", "ddio-partition-bound",
                             [probe = std::move(probe)](Nanos) { return check_llc(probe()); });
}

void register_iio_invariants(ModelAuditor& auditor, std::function<IioState()> probe) {
  auditor.register_invariant("host", "iio-occupancy-bound",
                             [probe = std::move(probe)](Nanos) { return check_iio(probe()); });
}

void register_dma_window_invariants(ModelAuditor& auditor,
                                    std::function<DmaWindowState()> probe) {
  auditor.register_invariant("pcie", "dma-read-window",
                             [probe = std::move(probe)](Nanos) { return check_dma_window(probe()); });
}

void register_credit_invariants(ModelAuditor& auditor,
                                std::function<CreditLedgerState()> probe) {
  auditor.register_invariant("ceio", "credit-ledger",
                             [probe = std::move(probe)](Nanos) { return check_credits(probe()); });
}

void register_time_invariant(ModelAuditor& auditor) {
  auditor.register_invariant(
      "sim", "clock-monotone",
      [last = Nanos::min()](Nanos now) mutable -> std::optional<std::string> {
        if (now < last) {
          return "sweep at t=" + i64(now.count()) + " after a sweep at t=" + i64(last.count());
        }
        last = now;
        return std::nullopt;
      });
}

void register_ring_invariants(ModelAuditor& auditor, std::string name,
                              std::function<RingState()> probe) {
  auditor.register_invariant("ring", std::move(name),
                             [probe = std::move(probe)](Nanos) { return check_ring(probe()); });
}

void register_sw_ring_invariants(ModelAuditor& auditor, std::string name,
                                 std::function<SwRingState()> probe) {
  auditor.register_invariant("ceio", std::move(name),
                             [probe = std::move(probe)](Nanos) { return check_sw_ring(probe()); });
}

void register_tenant_llc_invariants(ModelAuditor& auditor,
                                    std::function<TenantLlcState()> probe) {
  auditor.register_invariant(
      "host", "tenant-ddio-sum",
      [probe](Nanos) { return check_tenant_llc_sum(probe()); });
  auditor.register_invariant(
      "host", "tenant-way-bound",
      [probe = std::move(probe)](Nanos) { return check_tenant_llc_bound(probe()); });
}

// ---- Live-testbed binding ----

void register_standard_invariants(ModelAuditor& auditor, Testbed& bed) {
  Testbed* b = &bed;

  register_time_invariant(auditor);

  register_conservation_invariants(auditor, [b] {
    ConservationCounters c;
    c.nic_bytes = b->nic().stats().bytes;
    const auto& dma = b->dma().stats();
    c.dma_write_bytes = dma.write_bytes;
    c.dma_read_bytes = dma.read_bytes;
    c.dma_writes = dma.writes;
    c.dma_reads = dma.reads;
    const auto& mc = b->memory_controller().stats();
    c.mc_ddio_writes = mc.ddio_writes;
    c.mc_dram_writes = mc.dram_writes;
    return c;
  });

  register_llc_invariants(
      auditor, [b] { return LlcDdioState{b->llc().ddio_occupancy(), b->llc().ddio_capacity()}; });

  register_iio_invariants(
      auditor, [b] { return IioState{b->iio().occupancy(), b->iio().config().capacity}; });

  register_dma_window_invariants(auditor, [b] {
    const auto& s = b->dma().stats();
    return DmaWindowState{s.reads,
                          s.reads_completed,
                          s.writes,
                          s.writes_completed,
                          b->dma().outstanding_reads(),
                          b->config().dma.max_outstanding_reads,
                          b->dma().queued_reads()};
  });

  // Per-flow RX rings: one sweeping invariant that follows the datapath's
  // live flow set, rather than one registration per (transient) flow.
  auditor.register_invariant("ring", "rx-head-tail-coherent",
                             [b](Nanos) -> std::optional<std::string> {
                               std::optional<std::string> bad;
                               b->datapath().for_each_ring([&bad](const RxRing& ring) {
                                 if (bad) return;
                                 auto detail = check_ring(
                                     RingState{ring.head(), ring.tail(), ring.capacity()});
                                 if (detail) bad = ring.name() + ": " + *detail;
                               });
                               return bad;
                             });

  if (b->ceio() != nullptr) {
    register_credit_invariants(auditor, [b] {
      const CreditController& c = b->ceio()->credits();
      return CreditLedgerState{c.balance_sum(), c.free_pool(), c.total()};
    });

    auditor.register_invariant("ceio", "sw-ring-coherent",
                               [b](Nanos) -> std::optional<std::string> {
                                 for (const FlowId id : b->flow_ids()) {
                                   const auto d = b->ceio()->debug_slow_state(id);
                                   auto detail =
                                       check_sw_ring(SwRingState{d.sw_segment_sum, d.sw_pending});
                                   if (detail) {
                                     return "flow " + std::to_string(id) + ": " + *detail;
                                   }
                                 }
                                 return std::nullopt;
                               });
  }
}

}  // namespace ceio
