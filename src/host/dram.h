// DRAM bandwidth/latency model shared by all host memory traffic.
//
// Every byte that misses the LLC — CPU miss fetches, DDIO write-backs,
// non-DDIO DMA writes, application memcpys — draws from one bandwidth pool.
// The model is a work-conserving pipe: a request of B bytes occupies the pipe
// for B/bandwidth and observes the base access latency plus any queueing
// behind earlier requests. This creates the contention effect at the heart of
// §2.2: CPU-involved flows that miss the cache consume memory bandwidth that
// CPU-bypass flows need, degrading both.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace ceio {

struct DramConfig {
  Nanos access_latency{95};                // closed-page CAS + queueing floor
  BitsPerSec bandwidth = gbps(8 * 25.6 * 8);  // 8 channels of DDR4-3200
};

struct DramStats {
  std::int64_t requests = 0;
  Bytes bytes{0};
  Nanos busy_time{0};  // time the pipe spent transferring
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config) : config_(config) {}

  /// Reserves bandwidth for a request issued at `now` and returns its
  /// completion time (>= now + access_latency). Subsequent requests queue
  /// behind it.
  Nanos access(Nanos now, Bytes size);

  /// Completion time the *next* request issued at `now` would observe,
  /// without reserving (used by admission logic).
  Nanos peek_completion(Nanos now, Bytes size) const;

  /// Instantaneous queueing delay seen by a request issued at `now`.
  Nanos queueing_delay(Nanos now) const { return next_free_ > now ? next_free_ - now : Nanos{0}; }

  double utilization(Nanos elapsed) const {
    return elapsed > Nanos{0} ? static_cast<double>(stats_.busy_time) / static_cast<double>(elapsed)
                       : 0.0;
  }

  const DramStats& stats() const { return stats_; }
  const DramConfig& config() const { return config_; }
  void reset_stats() { stats_ = DramStats{}; }

 private:
  DramConfig config_;
  Nanos next_free_{0};
  DramStats stats_;
};

}  // namespace ceio
