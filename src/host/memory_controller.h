// Host memory controller: the junction where inbound DMA, the LLC and DRAM
// meet (stages ❷–❸ of the legacy I/O path in Figure 2).
//
// Responsibilities:
//  * Accept DMA writes from the PCIe DMA engine, stage them in the IIO
//    buffer, and drain them either into the LLC (DDIO enabled) or DRAM.
//  * Serve CPU loads/stores with hit/miss resolution against the LLC and
//    bandwidth-accounted DRAM fills on miss.
//  * Charge DDIO write-back traffic (dirty victims of premature evictions)
//    against the same DRAM bandwidth pool the CPU-bypass flows need.
#pragma once

#include <cstdint>

#include "common/inline_function.h"
#include "common/units.h"
#include "host/cache.h"
#include "host/dram.h"
#include "host/iio.h"
#include "sim/coalesced_stream.h"
#include "sim/event_scheduler.h"

namespace ceio {

class MetricRegistry;
class Telemetry;

struct MemoryControllerConfig {
  Nanos llc_write_latency{15};   // DDIO write absorbed by LLC
  Nanos llc_hit_latency{20};     // CPU load served by LLC
  Nanos iio_retry_delay{100};    // PCIe backpressure retry granularity
  /// Memory-level parallelism of a bulk copy loop: how many cache-line
  /// misses a memcpy keeps in flight. Limits how well DRAM latency is
  /// hidden when a worker walks a cold chunk (LLC-resident chunks copy
  /// several times faster — paper §6.4's zero-copy lesson).
  int bulk_mlp = 8;
  /// A missed RX buffer drags its descriptor/header line with it: the DMA
  /// write updated both, so when the payload was evicted the descriptor
  /// line was too, and the CPU pays a *dependent* second DRAM access (it
  /// must read the descriptor before it can address the payload).
  Bytes miss_descriptor_bytes{64};
};

struct MemoryControllerStats {
  std::int64_t ddio_writes = 0;
  std::int64_t dram_writes = 0;   // non-DDIO DMA writes
  std::int64_t iio_stalls = 0;    // DMA writes delayed by a full IIO buffer
  std::int64_t writebacks = 0;    // dirty victim lines pushed to DRAM
};

class MemoryController {
 public:
  // 80-byte budget: the DMA engine forwards its own 48-byte-capacity
  // completion wrapped with a stats-bumping `this` capture. That wrapper is
  // 80 bytes, not 64: the inner InlineFunction object is 64 (48-byte buffer
  // aligned to 16 plus the ops pointer) and `this` pads to the same 16-byte
  // alignment — so this layer needs the full 80 to keep the per-write chain
  // inline (the zero-alloc KV test pins this).
  using Completion = InlineFunction<void(Nanos done), 80>;

  MemoryController(EventScheduler& sched, LlcModel& llc, DramModel& dram, IioBuffer& iio,
                   const MemoryControllerConfig& config = {});

  /// Inbound DMA write of one buffer. `ddio` selects the LLC path; otherwise
  /// the write drains to DRAM. `expect_read` marks data the CPU will consume
  /// (premature-eviction accounting applies); pure CPU-bypass sinks pass
  /// false. `done` fires when the data is globally visible.
  void dma_write(BufferId id, Bytes size, bool ddio, Completion done,
                 bool expect_read = true);

  /// CPU load of a whole buffer. Returns the latency the load observes.
  /// Must be called at the simulated instant the load executes.
  Nanos cpu_read(BufferId id, Bytes size);

  /// CPU store of a whole buffer (memcpy destination, log append, ...).
  Nanos cpu_write(BufferId id, Bytes size);

  /// memcpy(dst, src, size): load + store with combined latency.
  Nanos cpu_copy(BufferId src, BufferId dst, Bytes size);

  /// Streaming (non-temporal) store: consumes DRAM bandwidth without
  /// write-allocate misses — how a log writer lays down bulk data.
  Nanos cpu_stream_write(Bytes size);

  /// Bulk sequential read of `count` buffers of `block` bytes starting at
  /// `begin` (a worker walking a chunk). Hits cost the LLC hit latency;
  /// misses are *pipelined* — hardware prefetch overlaps them — so the cost
  /// is one DRAM bandwidth reservation for all missed bytes plus a single
  /// access latency, not count serialized round trips.
  Nanos cpu_bulk_read(BufferId begin, std::uint32_t count, Bytes block);

  /// Buffer freed/recycled: drop any cached copy without write-back.
  void release_buffer(BufferId id) { llc_.invalidate(id); }

  const MemoryControllerStats& stats() const { return stats_; }
  LlcModel& llc() { return llc_; }
  DramModel& dram() { return dram_; }
  IioBuffer& iio() { return iio_; }

  /// Attaches a trace sink for IIO-stall / premature-eviction instants.
  void set_telemetry(Telemetry* tele) { tele_ = tele; }
  /// Registers host.iio.* / host.dram.* / host.mc.* gauges and forwards to
  /// the LLC's host.llc.* set.
  void register_metrics(MetricRegistry& registry) const;

 private:
  /// A DMA write waiting for global visibility: drains IIO and completes.
  struct PendingWrite {
    Bytes size{0};
    Completion done;
  };

  void start_dma_write(BufferId id, Bytes size, bool ddio, bool expect_read, Completion done);
  void charge_eviction(const LlcModel::Evicted& ev);
  void finish_write(Nanos when, PendingWrite write) {
    iio_.drain(write.size);
    if (write.done) write.done(when);
  }

  EventScheduler& sched_;
  LlcModel& llc_;
  DramModel& dram_;
  IioBuffer& iio_;
  MemoryControllerConfig config_;
  MemoryControllerStats stats_;
  Telemetry* tele_ = nullptr;
  // Completion times are monotonic per drain target (LLC: now + a constant
  // write latency; DRAM: the bandwidth pipe's free_at), but not across the
  // two, so each is its own coalesced stream: bursts of completions drain
  // in one event each, at exact per-write times.
  CoalescedStream<PendingWrite> llc_completions_;
  CoalescedStream<PendingWrite> dram_completions_;
};

}  // namespace ceio
