// Integrated I/O (IIO) buffer occupancy model.
//
// Inbound DMA writes land in the IIO staging buffer before the memory
// controller drains them into the LLC (DDIO) or DRAM. Its occupancy is the
// congestion signal HostCC monitors (paper §2.3): when the drain side (cache
// or DRAM) falls behind the PCIe arrival rate, occupancy rises. We track
// occupancy in bytes with explicit admit/drain transitions so a baseline can
// poll it at any simulated instant.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace ceio {

struct IioConfig {
  Bytes capacity = 256 * kKiB;  // per-socket IIO write buffer
};

class IioBuffer {
 public:
  explicit IioBuffer(const IioConfig& config) : config_(config) {}

  /// Admits an inbound DMA write. Returns false when the buffer is full, in
  /// which case PCIe backpressure stalls the transfer (the caller retries).
  bool admit(Bytes size) {
    if (occupancy_ + size > config_.capacity) {
      ++rejects_;
      return false;
    }
    occupancy_ += size;
    peak_ = occupancy_ > peak_ ? occupancy_ : peak_;
    ++admits_;
    return true;
  }

  /// Releases bytes once the memory controller finishes the drain.
  void drain(Bytes size) { occupancy_ = occupancy_ > size ? occupancy_ - size : Bytes{0}; }

  Bytes occupancy() const { return occupancy_; }
  double occupancy_fraction() const {
    return config_.capacity > Bytes{0}
               ? static_cast<double>(occupancy_) / static_cast<double>(config_.capacity)
               : 0.0;
  }
  Bytes peak_occupancy() const { return peak_; }
  std::int64_t admits() const { return admits_; }
  std::int64_t rejects() const { return rejects_; }
  const IioConfig& config() const { return config_; }

 private:
  IioConfig config_;
  Bytes occupancy_{0};
  Bytes peak_{0};
  std::int64_t admits_ = 0;
  std::int64_t rejects_ = 0;
};

}  // namespace ceio
