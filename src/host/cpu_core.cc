#include "host/cpu_core.h"

namespace ceio {

CpuCore::CpuCore(EventScheduler& sched, MemoryController& mc, const CpuCoreConfig& config)
    : sched_(sched), mc_(mc), config_(config) {}

void CpuCore::submit(PacketWork work) {
  queue_.push_back(std::move(work));
  if (!busy_) run_next();
}

void CpuCore::run_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  PacketWork work = queue_.pop_front();

  // Memory costs are resolved *now*, at processing start, so cache residency
  // reflects whatever DMA traffic arrived while the item queued.
  Nanos mem{0};
  if (work.read_buffer && work.buffer != 0) {
    mem += mc_.cpu_read(work.buffer, work.size);
  }
  if (work.copy_to != 0 && work.copy_src_count == 0) {
    mem += mc_.cpu_copy(work.buffer, work.copy_to, work.size);
  }
  if (work.copy_src_count > 0) {
    // Bulk message copy: per-buffer residency decides hit vs DRAM; misses
    // are pipelined inside cpu_bulk_read (prefetch overlaps them).
    mem += mc_.cpu_bulk_read(work.copy_src_begin, work.copy_src_count, work.copy_block);
  }
  if (work.stream_bytes > Bytes{0}) {
    mem += mc_.cpu_stream_write(work.stream_bytes);
  }
  const Nanos payload_cost =
      nanos(config_.per_byte_cost_ns * static_cast<double>(work.size.count()));
  const Nanos service = config_.per_packet_cost + payload_cost + work.app_cost + mem;

  ++stats_.packets;
  stats_.busy_time += service;
  stats_.mem_stall_time += mem;

  // The core is serial: exactly one work item is in flight until its
  // completion event fires, so its callback parks in a member and the event
  // captures only `this` — a 64-byte on_done in the capture would blow the
  // scheduler's inline budget and heap-allocate per packet.
  current_done_ = std::move(work.on_done);
  sched_.schedule_after(service, [this]() {
    auto done_cb = std::move(current_done_);
    if (done_cb) done_cb(sched_.now());
    run_next();
  });
}

}  // namespace ceio
