#include "host/cache.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace ceio {

LlcModel::LlcModel(const LlcConfig& config) : config_(config) {
  const auto total_buffers =
      static_cast<std::size_t>(std::max<std::int64_t>(config.total_bytes / config.buffer_bytes, 1));
  const auto ways = static_cast<std::size_t>(std::max(config.ways, 1));
  const auto num_sets = std::max<std::size_t>(total_buffers / ways, 1);
  const auto ddio_ways = static_cast<std::size_t>(std::clamp(config.ddio_ways, 0, config.ways));
  sets_.resize(num_sets);
  for (auto& set : sets_) {
    set.io_ways.resize(ddio_ways);
    set.app_ways.resize(ways - ddio_ways);
  }
  ddio_capacity_ = num_sets * ddio_ways;
  if ((num_sets & (num_sets - 1)) == 0) set_mask_ = num_sets - 1;
}

LlcModel::Entry* LlcModel::find(BufferId id) {
  if (last_entry_ != nullptr && last_id_ == id && last_entry_->valid &&
      last_entry_->id == id) {
    return last_entry_;
  }
  auto& set = sets_[set_of(id)];
  for (auto& e : set.io_ways) {
    if (e.valid && e.id == id) {
      last_id_ = id;
      last_entry_ = &e;
      return &e;
    }
  }
  for (auto& e : set.app_ways) {
    if (e.valid && e.id == id) {
      last_id_ = id;
      last_entry_ = &e;
      return &e;
    }
  }
  return nullptr;
}

const LlcModel::Entry* LlcModel::find(BufferId id) const {
  return const_cast<LlcModel*>(this)->find(id);
}

LlcModel::Evicted LlcModel::fill(std::vector<Entry>& ways, BufferId id, Bytes size,
                                 bool io_partition, bool dirty, bool expect_read) {
  Evicted out;
  Entry* slot = nullptr;
  // Prefer an invalid way; otherwise evict the LRU entry.
  for (auto& e : ways) {
    if (!e.valid) {
      slot = &e;
      break;
    }
  }
  if (slot == nullptr) {
    slot = &ways.front();
    for (auto& e : ways) {
      if (e.stamp < slot->stamp) slot = &e;
    }
    out.happened = true;
    out.victim = slot->id;
    out.victim_bytes = slot->bytes;
    out.dirty = slot->dirty;
    out.never_read = slot->expect_read && !slot->read_since_fill;
    ++stats_.evictions;
    if (out.never_read) ++stats_.premature_evictions;
    if (out.dirty) ++stats_.writebacks;
    if (slot->io_partition && ddio_resident_ > 0) --ddio_resident_;
  }
  slot->id = id;
  slot->bytes = size;
  slot->stamp = ++clock_;
  slot->valid = true;
  slot->dirty = dirty;
  slot->read_since_fill = false;
  slot->expect_read = expect_read;
  slot->io_partition = io_partition;
  if (io_partition) ++ddio_resident_;
  last_id_ = id;
  last_entry_ = slot;
  return out;
}

LlcModel::Evicted LlcModel::ddio_write(BufferId id, Bytes size, bool expect_read) {
  ++stats_.ddio_writes;
  if (Entry* e = find(id)) {
    // Write-update in place: refresh recency, mark dirty.
    e->stamp = ++clock_;
    e->dirty = true;
    e->bytes = size;
    e->read_since_fill = false;
    e->expect_read = expect_read;
    return {};
  }
  auto& set = sets_[set_of(id)];
  if (set.io_ways.empty()) {
    // DDIO disabled: the write goes straight to DRAM and is not cached.
    Evicted out;
    out.happened = false;
    return out;
  }
  return fill(set.io_ways, id, size, /*io_partition=*/true, /*dirty=*/true, expect_read);
}

bool LlcModel::cpu_read(BufferId id, Bytes size, Evicted* evicted) {
  if (Entry* e = find(id)) {
    e->stamp = ++clock_;
    e->read_since_fill = true;
    ++stats_.cpu_hits;
    return true;
  }
  ++stats_.cpu_misses;
  auto& set = sets_[set_of(id)];
  auto& ways = set.app_ways.empty() ? set.io_ways : set.app_ways;
  const auto ev = fill(ways, id, size, /*io_partition=*/set.app_ways.empty(), /*dirty=*/false);
  if (Entry* e = find(id)) e->read_since_fill = true;
  if (evicted != nullptr) *evicted = ev;
  return false;
}

bool LlcModel::cpu_write(BufferId id, Bytes size, Evicted* evicted) {
  if (Entry* e = find(id)) {
    e->stamp = ++clock_;
    e->dirty = true;
    ++stats_.cpu_hits;
    return true;
  }
  ++stats_.cpu_misses;
  auto& set = sets_[set_of(id)];
  auto& ways = set.app_ways.empty() ? set.io_ways : set.app_ways;
  const auto ev = fill(ways, id, size, /*io_partition=*/set.app_ways.empty(), /*dirty=*/true);
  if (evicted != nullptr) *evicted = ev;
  return false;
}

void LlcModel::invalidate(BufferId id) {
  if (Entry* e = find(id)) {
    if (e->io_partition && ddio_resident_ > 0) --ddio_resident_;
    e->valid = false;
    e->dirty = false;
  }
}

bool LlcModel::resident(BufferId id) const { return find(id) != nullptr; }

void LlcModel::register_metrics(MetricRegistry& registry) const {
  registry.add_gauge("host.llc.ddio_occupancy",
                     [this]() { return static_cast<double>(ddio_occupancy()); });
  registry.add_gauge("host.llc.ddio_capacity",
                     [this]() { return static_cast<double>(ddio_capacity()); });
  registry.add_gauge("host.llc.miss_rate", [this]() { return stats_.miss_rate(); });
  registry.add_gauge("host.llc.cpu_misses",
                     [this]() { return static_cast<double>(stats_.cpu_misses); });
  registry.add_gauge("host.llc.premature_evictions",
                     [this]() { return static_cast<double>(stats_.premature_evictions); });
  registry.add_gauge("host.llc.writebacks",
                     [this]() { return static_cast<double>(stats_.writebacks); });
}

}  // namespace ceio
