#include "host/cache.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace ceio {

LlcModel::LlcModel(const LlcConfig& config) : config_(config) {
  const auto total_buffers =
      static_cast<std::size_t>(std::max<std::int64_t>(config.total_bytes / config.buffer_bytes, 1));
  const auto ways = static_cast<std::size_t>(std::max(config.ways, 1));
  const auto num_sets = std::max<std::size_t>(total_buffers / ways, 1);
  const auto ddio_ways = static_cast<std::size_t>(std::clamp(config.ddio_ways, 0, config.ways));
  num_sets_ = num_sets;
  ways_per_set_ = ways;
  io_ways_per_set_ = ddio_ways;
  const std::size_t total_ways = num_sets * ways;
  tags_.assign(total_ways, kInvalidTag);
  stamps_.assign(total_ways, 0);
  bytes_.assign(total_ways, Bytes{0});
  flags_.assign(total_ways, 0);
  ddio_capacity_ = num_sets * ddio_ways;
  if ((num_sets & (num_sets - 1)) == 0) set_mask_ = num_sets - 1;
}

std::size_t LlcModel::find_way(BufferId id) const {
  if (last_way_ != kNoWay && last_id_ == id && tags_[last_way_] == id &&
      (flags_[last_way_] & kValid) != 0) {
    return last_way_;
  }
  const std::size_t base = row_base(set_of(id));
  const BufferId* tags = tags_.data() + base;
  for (std::size_t w = 0; w < ways_per_set_; ++w) {
    // Invalid slots park their tag at kInvalidTag, so the compare alone
    // rejects them; the flags byte is only consulted on the (rare) match.
    if (tags[w] == id && (flags_[base + w] & kValid) != 0) {
      last_id_ = id;
      last_way_ = base + w;
      return base + w;
    }
  }
  return kNoWay;
}

std::size_t LlcModel::tenant_of_way(std::size_t way) const {
  // tenant_way_off_[t] is the first way index owned by tenant t; slices are
  // contiguous, so scan for the last offset <= way. Tenant counts are tiny
  // (2-4), so a linear scan beats a binary search here.
  std::size_t t = 0;
  for (std::size_t i = 1; i < tenant_way_off_.size(); ++i) {
    if (way >= tenant_way_off_[i]) t = i;
  }
  return t;
}

std::size_t LlcModel::tenant_of(BufferId id) const {
  for (const auto& r : tenant_ranges_) {
    if (id >= r.lo && id < r.hi) return r.tenant;
  }
  return 0;
}

void LlcModel::note_io_eviction(std::size_t way, std::size_t idx) {
  const std::size_t t = tenant_of_entry(way, tags_[idx]);
  auto& ts = tenant_stats_[t];
  const std::uint8_t f = flags_[idx];
  ++ts.evictions;
  if ((f & kExpectRead) != 0 && (f & kReadSinceFill) == 0) ++ts.premature_evictions;
  if ((f & kDirty) != 0) ++ts.writebacks;
  if (tenant_resident_[t] > 0) --tenant_resident_[t];
}

void LlcModel::place(std::size_t idx, BufferId id, Bytes size, bool io_partition, bool dirty,
                     bool expect_read) {
  tags_[idx] = id;
  bytes_[idx] = size;
  stamps_[idx] = ++clock_;
  flags_[idx] = static_cast<std::uint8_t>(kValid | (dirty ? kDirty : 0) |
                                          (expect_read ? kExpectRead : 0) |
                                          (io_partition ? kIoPartition : 0));
  last_id_ = id;
  last_way_ = idx;
}

LlcModel::Evicted LlcModel::fill_range(std::size_t first, std::size_t last, bool io_attr,
                                       std::size_t row0, BufferId id, Bytes size,
                                       bool io_partition, bool dirty, bool expect_read) {
  Evicted out;
  std::size_t slot = kNoWay;
  // Prefer an invalid way; otherwise evict the LRU entry.
  for (std::size_t w = first; w != last; ++w) {
    if ((flags_[w] & kValid) == 0) {
      slot = w;
      break;
    }
  }
  const bool tenanted = io_attr && !tenant_ways_.empty();
  if (slot == kNoWay) {
    slot = first;
    for (std::size_t w = first; w != last; ++w) {
      if (stamps_[w] < stamps_[slot]) slot = w;
    }
    const std::uint8_t vf = flags_[slot];
    out.happened = true;
    out.victim = tags_[slot];
    out.victim_bytes = bytes_[slot];
    out.dirty = (vf & kDirty) != 0;
    out.never_read = (vf & kExpectRead) != 0 && (vf & kReadSinceFill) == 0;
    ++stats_.evictions;
    if (out.never_read) ++stats_.premature_evictions;
    if (out.dirty) ++stats_.writebacks;
    if ((vf & kIoPartition) != 0 && ddio_resident_ > 0) --ddio_resident_;
    if (tenanted && (vf & kIoPartition) != 0) {
      note_io_eviction(slot - row0, slot);
    }
  }
  place(slot, id, size, io_partition, dirty, expect_read);
  if (io_partition) ++ddio_resident_;
  if (tenanted && io_partition) {
    const std::size_t t = tenant_of_entry(slot - row0, id);
    ++tenant_resident_[t];
    ++tenant_stats_[t].fills;
  }
  return out;
}

LlcModel::Evicted LlcModel::fill_io_tenanted(std::size_t row0, std::size_t tenant, BufferId id,
                                             Bytes size, bool expect_read) {
  // Candidate ways = the tenant's exclusive slice plus the shared pool at the
  // top of the io partition: one associative group under LRU, so a hot
  // neighbor's fills can evict this tenant's shared-pool lines (the
  // co-location contention the controller reacts to) but never its slice.
  const std::size_t s1 = row0 + tenant_way_off_[tenant];
  const std::size_t e1 = s1 + static_cast<std::size_t>(tenant_ways_[tenant]);
  const std::size_t s2 = row0 + tenant_slice_end_;
  const std::size_t e2 = row0 + io_ways_per_set_;
  std::size_t slot = kNoWay;
  for (std::size_t w = s1; w != e1 && slot == kNoWay; ++w) {
    if ((flags_[w] & kValid) == 0) slot = w;
  }
  for (std::size_t w = s2; w != e2 && slot == kNoWay; ++w) {
    if ((flags_[w] & kValid) == 0) slot = w;
  }
  Evicted out;
  if (slot == kNoWay) {
    for (std::size_t w = s1; w != e1; ++w) {
      if (slot == kNoWay || stamps_[w] < stamps_[slot]) slot = w;
    }
    for (std::size_t w = s2; w != e2; ++w) {
      if (slot == kNoWay || stamps_[w] < stamps_[slot]) slot = w;
    }
    const std::uint8_t vf = flags_[slot];
    out.happened = true;
    out.victim = tags_[slot];
    out.victim_bytes = bytes_[slot];
    out.dirty = (vf & kDirty) != 0;
    out.never_read = (vf & kExpectRead) != 0 && (vf & kReadSinceFill) == 0;
    ++stats_.evictions;
    if (out.never_read) ++stats_.premature_evictions;
    if (out.dirty) ++stats_.writebacks;
    if ((vf & kIoPartition) != 0 && ddio_resident_ > 0) --ddio_resident_;
    if ((vf & kIoPartition) != 0) note_io_eviction(slot - row0, slot);
  }
  place(slot, id, size, /*io_partition=*/true, /*dirty=*/true, expect_read);
  ++ddio_resident_;
  ++tenant_resident_[tenant];
  ++tenant_stats_[tenant].fills;
  return out;
}

LlcModel::Evicted LlcModel::ddio_write(BufferId id, Bytes size, bool expect_read) {
  ++stats_.ddio_writes;
  const std::size_t idx = find_way(id);
  if (idx != kNoWay) {
    // Write-update in place: refresh recency, mark dirty.
    stamps_[idx] = ++clock_;
    bytes_[idx] = size;
    flags_[idx] = static_cast<std::uint8_t>(
        (flags_[idx] & ~(kReadSinceFill | kExpectRead)) | kDirty |
        (expect_read ? kExpectRead : 0));
    return {};
  }
  const std::size_t base = row_base(set_of(id));
  if (io_ways_per_set_ == 0) {
    // DDIO disabled: the write goes straight to DRAM and is not cached.
    Evicted out;
    out.happened = false;
    return out;
  }
  if (!tenant_ways_.empty()) {
    // Tenanted DDIO: allocate within the owning tenant's way mask (exclusive
    // slice + shared pool), and honor its A4-style occupancy budget (over
    // budget -> uncached, straight to DRAM, same as the DDIO-disabled path
    // above).
    const std::size_t t = tenant_of(id);
    const auto ways = static_cast<std::size_t>(tenant_ways_[t]);
    const bool over_budget =
        tenant_budget_[t] > 0 && tenant_resident_[t] >= tenant_budget_[t];
    if ((ways == 0 && shared_io_ways_ == 0) || over_budget) {
      ++tenant_stats_[t].budget_bypasses;
      Evicted out;
      out.happened = false;
      return out;
    }
    return fill_io_tenanted(base, t, id, size, expect_read);
  }
  return fill_range(base, base + io_ways_per_set_, /*io_attr=*/true, base, id, size,
                    /*io_partition=*/true, /*dirty=*/true, expect_read);
}

bool LlcModel::cpu_read(BufferId id, Bytes size, Evicted* evicted) {
  const std::size_t idx = find_way(id);
  if (idx != kNoWay) {
    stamps_[idx] = ++clock_;
    flags_[idx] |= kReadSinceFill;
    ++stats_.cpu_hits;
    return true;
  }
  ++stats_.cpu_misses;
  const std::size_t base = row_base(set_of(id));
  const bool app_empty = io_ways_per_set_ == ways_per_set_;
  const std::size_t first = app_empty ? base : base + io_ways_per_set_;
  const std::size_t last = base + ways_per_set_;
  const auto ev = fill_range(first, last, /*io_attr=*/app_empty, base, id, size,
                             /*io_partition=*/app_empty, /*dirty=*/false);
  const std::size_t filled = find_way(id);
  if (filled != kNoWay) flags_[filled] |= kReadSinceFill;
  if (evicted != nullptr) *evicted = ev;
  return false;
}

bool LlcModel::cpu_write(BufferId id, Bytes size, Evicted* evicted) {
  const std::size_t idx = find_way(id);
  if (idx != kNoWay) {
    stamps_[idx] = ++clock_;
    flags_[idx] |= kDirty;
    ++stats_.cpu_hits;
    return true;
  }
  ++stats_.cpu_misses;
  const std::size_t base = row_base(set_of(id));
  const bool app_empty = io_ways_per_set_ == ways_per_set_;
  const std::size_t first = app_empty ? base : base + io_ways_per_set_;
  const std::size_t last = base + ways_per_set_;
  const auto ev = fill_range(first, last, /*io_attr=*/app_empty, base, id, size,
                             /*io_partition=*/app_empty, /*dirty=*/true);
  if (evicted != nullptr) *evicted = ev;
  return false;
}

void LlcModel::invalidate(BufferId id) {
  const std::size_t idx = find_way(id);
  if (idx == kNoWay) return;
  const std::uint8_t f = flags_[idx];
  if ((f & kIoPartition) != 0 && ddio_resident_ > 0) --ddio_resident_;
  if ((f & kIoPartition) != 0 && !tenant_ways_.empty()) {
    // Attribute by way ownership (shared-pool lines by BufferId): the global
    // way index modulo the row base identifies the way inside the set's io
    // partition.
    const std::size_t way = idx - row_base(set_of(id));
    const std::size_t t = tenant_of_entry(way, id);
    if (tenant_resident_[t] > 0) --tenant_resident_[t];
  }
  flags_[idx] = static_cast<std::uint8_t>(f & ~(kValid | kDirty));
  // Park the tag so the branch-light lookup scan rejects this slot on the
  // compare alone.
  tags_[idx] = kInvalidTag;
}

bool LlcModel::resident(BufferId id) const { return find_way(id) != kNoWay; }

void LlcModel::set_tenant_ways(const std::vector<int>& ways) {
  const std::size_t per_set = io_ways_per_set_;
  std::size_t sum = 0;
  for (int w : ways) {
    if (w < 0) throw std::invalid_argument("tenant way count must be non-negative");
    sum += static_cast<std::size_t>(w);
  }
  if (sum > per_set) {
    throw std::invalid_argument("tenant way counts exceed the DDIO way count");
  }
  tenant_ways_ = ways;
  tenant_slice_end_ = sum;
  shared_io_ways_ = per_set - sum;
  tenant_way_off_.assign(ways.size(), 0);
  for (std::size_t t = 1; t < ways.size(); ++t) {
    tenant_way_off_[t] = tenant_way_off_[t - 1] + static_cast<std::size_t>(ways[t - 1]);
  }
  if (tenant_resident_.size() != ways.size()) tenant_resident_.assign(ways.size(), 0);
  if (tenant_budget_.size() != ways.size()) tenant_budget_.resize(ways.size(), 0);
  if (tenant_stats_.size() != ways.size()) tenant_stats_.resize(ways.size());
  // Re-masking transfers resident lines with their way (no flush), so rescan
  // to recompute each tenant's occupancy under the new slice boundaries
  // (shared-pool lines stay with their BufferId's owner).
  std::fill(tenant_resident_.begin(), tenant_resident_.end(), 0);
  for (std::size_t s = 0; s < num_sets_; ++s) {
    const std::size_t base = row_base(s);
    for (std::size_t w = 0; w < io_ways_per_set_; ++w) {
      const std::uint8_t f = flags_[base + w];
      if ((f & kValid) != 0 && (f & kIoPartition) != 0) {
        ++tenant_resident_[tenant_of_entry(w, tags_[base + w])];
      }
    }
  }
}

void LlcModel::add_tenant_range(BufferId lo, BufferId hi, std::size_t tenant) {
  tenant_ranges_.push_back({lo, hi, tenant});
}

void LlcModel::set_tenant_budget(std::size_t tenant, std::size_t budget) {
  if (tenant >= tenant_budget_.size()) {
    throw std::logic_error("tenant budget set before set_tenant_ways");
  }
  tenant_budget_[tenant] = budget;
}

void LlcModel::register_metrics(MetricRegistry& registry) const {
  registry.add_gauge("host.llc.ddio_occupancy",
                     [this]() { return static_cast<double>(ddio_occupancy()); });
  registry.add_gauge("host.llc.ddio_capacity",
                     [this]() { return static_cast<double>(ddio_capacity()); });
  registry.add_gauge("host.llc.miss_rate", [this]() { return stats_.miss_rate(); });
  registry.add_gauge("host.llc.cpu_misses",
                     [this]() { return static_cast<double>(stats_.cpu_misses); });
  registry.add_gauge("host.llc.premature_evictions",
                     [this]() { return static_cast<double>(stats_.premature_evictions); });
  registry.add_gauge("host.llc.writebacks",
                     [this]() { return static_cast<double>(stats_.writebacks); });
}

}  // namespace ceio
