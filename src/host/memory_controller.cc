#include "host/memory_controller.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace ceio {

MemoryController::MemoryController(EventScheduler& sched, LlcModel& llc, DramModel& dram,
                                   IioBuffer& iio, const MemoryControllerConfig& config)
    : sched_(sched),
      llc_(llc),
      dram_(dram),
      iio_(iio),
      config_(config),
      llc_completions_(sched, [this](Nanos when, PendingWrite w) {
        finish_write(when, std::move(w));
      }),
      dram_completions_(sched, [this](Nanos when, PendingWrite w) {
        finish_write(when, std::move(w));
      }) {}

void MemoryController::charge_eviction(const LlcModel::Evicted& ev) {
  if (ev.happened && ev.never_read) {
    CEIO_T_INSTANT(tele_, TraceTrack::kLlc, "premature_evict", sched_.now(),
                   static_cast<double>(ev.victim_bytes.count()), 0);
  }
  if (ev.happened && ev.dirty) {
    // The write-back consumes DRAM bandwidth but nobody waits on it. Only
    // the victim's dirty bytes travel (a 128 B packet in a 2 KiB buffer
    // writes back 128 B, not the whole buffer).
    dram_.access(sched_.now(), ev.victim_bytes > Bytes{0} ? ev.victim_bytes
                                                   : llc_.config().buffer_bytes);
    ++stats_.writebacks;
  }
}

void MemoryController::dma_write(BufferId id, Bytes size, bool ddio, Completion done,
                                 bool expect_read) {
  if (!iio_.admit(size)) {
    // IIO full: PCIe backpressure. Retry until space frees up; this models
    // the exhausted-PCIe-credit stall described for CPU-bypass flows (§2.2).
    ++stats_.iio_stalls;
    CEIO_T_INSTANT(tele_, TraceTrack::kPcieLink, "iio_stall", sched_.now(),
                   static_cast<double>(iio_.occupancy().count()), 0);
    sched_.schedule_after(config_.iio_retry_delay,
                          [this, id, size, ddio, expect_read, done = std::move(done)]() mutable {
                            dma_write(id, size, ddio, std::move(done), expect_read);
                          });
    return;
  }
  start_dma_write(id, size, ddio, expect_read, std::move(done));
}

void MemoryController::start_dma_write(BufferId id, Bytes size, bool ddio, bool expect_read,
                                       Completion done) {
  if (ddio) {
    const auto ev = llc_.ddio_write(id, size, expect_read);
    charge_eviction(ev);
    ++stats_.ddio_writes;
    llc_completions_.push(sched_.now() + config_.llc_write_latency,
                          PendingWrite{size, std::move(done)});
  } else {
    const Nanos complete_at = dram_.access(sched_.now(), size);
    ++stats_.dram_writes;
    dram_completions_.push(complete_at, PendingWrite{size, std::move(done)});
  }
}

Nanos MemoryController::cpu_read(BufferId id, Bytes size) {
  LlcModel::Evicted ev;
  if (llc_.cpu_read(id, size, &ev)) {
    return config_.llc_hit_latency;
  }
  charge_eviction(ev);
  // Dependent pair: descriptor line first, then the payload fetch.
  const Nanos now = sched_.now();
  Nanos done = now;
  if (config_.miss_descriptor_bytes > Bytes{0}) {
    done = dram_.access(now, config_.miss_descriptor_bytes);
  }
  const Nanos wait = done - now;
  return wait + (dram_.access(done, size) - done);
}

Nanos MemoryController::cpu_write(BufferId id, Bytes size) {
  LlcModel::Evicted ev;
  if (llc_.cpu_write(id, size, &ev)) {
    return config_.llc_hit_latency;
  }
  charge_eviction(ev);
  // Write-allocate: fetch the line, modify in cache.
  const Nanos done = dram_.access(sched_.now(), size);
  return done - sched_.now();
}

Nanos MemoryController::cpu_copy(BufferId src, BufferId dst, Bytes size) {
  return cpu_read(src, size) + cpu_write(dst, size);
}

Nanos MemoryController::cpu_bulk_read(BufferId begin, std::uint32_t count, Bytes block) {
  Nanos total{0};
  Bytes missed_bytes{0};
  for (std::uint32_t i = 0; i < count; ++i) {
    LlcModel::Evicted ev;
    if (llc_.cpu_read(begin + i, block, &ev)) {
      total += config_.llc_hit_latency;
    } else {
      charge_eviction(ev);
      missed_bytes += block;
    }
  }
  if (missed_bytes > Bytes{0}) {
    // Latency term: each missed cache line stalls ~access_latency/MLP; the
    // bandwidth term comes from one aggregate DRAM reservation. The copy
    // pays whichever is larger.
    const Nanos now = sched_.now();
    const std::int64_t lines = missed_bytes.count() / 64;
    const Nanos latency_bound = dram_.config().access_latency * lines /
                                std::max(config_.bulk_mlp, 1);
    const Nanos bw_bound = dram_.access(now, missed_bytes) - now;
    total += std::max(latency_bound, bw_bound);
  }
  return total;
}

void MemoryController::register_metrics(MetricRegistry& registry) const {
  llc_.register_metrics(registry);
  registry.add_gauge("host.iio.occupancy_bytes",
                     [this]() { return static_cast<double>(iio_.occupancy().count()); });
  registry.add_gauge("host.iio.occupancy_frac",
                     [this]() { return iio_.occupancy_fraction(); });
  registry.add_gauge("host.iio.rejects",
                     [this]() { return static_cast<double>(iio_.rejects()); });
  registry.add_gauge("host.dram.utilization",
                     [this]() { return dram_.utilization(sched_.now()); });
  registry.add_gauge("host.dram.queue_delay_ns", [this]() {
    return static_cast<double>(dram_.queueing_delay(sched_.now()).count());
  });
  registry.add_gauge("host.mc.iio_stalls",
                     [this]() { return static_cast<double>(stats_.iio_stalls); });
  registry.add_gauge("host.mc.ddio_writes",
                     [this]() { return static_cast<double>(stats_.ddio_writes); });
  registry.add_gauge("host.mc.dram_writes",
                     [this]() { return static_cast<double>(stats_.dram_writes); });
  registry.add_gauge("host.mc.writebacks",
                     [this]() { return static_cast<double>(stats_.writebacks); });
}

Nanos MemoryController::cpu_stream_write(Bytes size) {
  // Non-temporal store: the write-combining buffers hide latency; only the
  // DRAM bandwidth reservation is visible to the core.
  const Nanos now = sched_.now();
  const Nanos done = dram_.access(now, size);
  return (done - now) / 4;  // WC buffers overlap most of the transfer
}

}  // namespace ceio
