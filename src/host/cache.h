// Last-Level Cache model with a dedicated DDIO partition.
//
// The unit of tracking is an I/O buffer (one packet buffer, e.g. 2 KiB), the
// same granularity at which CEIO issues credits (paper Eq. 1). The cache is
// set-associative: each set has `ddio_ways` ways reserved for inbound DMA
// (Intel DDIO allocates writes only into a subset of ways) and the remaining
// ways for regular CPU fills. This reproduces the paper's core phenomenon:
// when in-flight I/O data exceeds the DDIO partition, newly DMAed buffers
// evict older ones *before the CPU has read them*, so the eventual CPU access
// misses and pays a DRAM round trip (data path ❸ in Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace ceio {

class MetricRegistry;

/// Identifies one cached I/O buffer (or app buffer). Allocated monotonically
/// by whoever owns the memory (host buffer pool, app pools).
using BufferId = std::uint64_t;

struct LlcConfig {
  Bytes total_bytes = 12 * kMiB;  // Xeon Silver 4309Y LLC
  int ways = 12;
  int ddio_ways = 2;          // default DDIO configuration
  Bytes buffer_bytes = 2 * kKiB;  // tracking granularity (one RX buffer)

  Bytes ddio_bytes() const { return total_bytes / ways * ddio_ways; }
  Bytes app_bytes() const { return total_bytes / ways * (ways - ddio_ways); }
};

struct LlcStats {
  std::int64_t ddio_writes = 0;      // DMA writes absorbed by the LLC
  std::int64_t cpu_hits = 0;         // CPU reads served from LLC
  std::int64_t cpu_misses = 0;       // CPU reads that went to DRAM
  std::int64_t evictions = 0;        // total capacity evictions
  std::int64_t premature_evictions = 0;  // evicted before first CPU read
  std::int64_t writebacks = 0;       // dirty lines pushed to DRAM

  double miss_rate() const {
    const auto total = cpu_hits + cpu_misses;
    return total > 0 ? static_cast<double>(cpu_misses) / static_cast<double>(total) : 0.0;
  }
};

class LlcModel {
 public:
  explicit LlcModel(const LlcConfig& config);

  /// Result of an eviction caused by an insert.
  struct Evicted {
    bool happened = false;
    BufferId victim = 0;
    Bytes victim_bytes{0};      // dirty bytes to write back
    bool dirty = false;          // needs a DRAM write-back
    bool never_read = false;     // premature eviction (evicted before use)
  };

  /// A DMA write lands in the DDIO partition of the buffer's set (write
  /// allocate). Returns the eviction it caused, if any.
  Evicted ddio_write(BufferId id, Bytes size, bool expect_read = true);

  /// A CPU load touches the buffer. On a miss the buffer is filled into the
  /// non-DDIO partition. Returns true on hit.
  bool cpu_read(BufferId id, Bytes size, Evicted* evicted = nullptr);

  /// A CPU store (e.g. memcpy destination). Allocates into the non-DDIO
  /// partition and marks the line dirty. Returns true on hit.
  bool cpu_write(BufferId id, Bytes size, Evicted* evicted = nullptr);

  /// Drops the buffer from the cache without a write-back (buffer freed and
  /// recycled; the next DMA into the recycled buffer re-inserts it).
  void invalidate(BufferId id);

  /// True when the buffer is currently cache-resident (any partition).
  bool resident(BufferId id) const;

  /// Number of buffers currently resident in the DDIO partition.
  std::size_t ddio_occupancy() const { return ddio_resident_; }
  /// Capacity of the DDIO partition, in buffers.
  std::size_t ddio_capacity() const { return ddio_capacity_; }

  const LlcStats& stats() const { return stats_; }
  const LlcConfig& config() const { return config_; }
  void reset_stats() { stats_ = LlcStats{}; }

  /// Exposes the cache's observables as pull gauges under "host.llc.*"
  /// (telemetry subsystem; no-op cost until a sampler reads them).
  void register_metrics(MetricRegistry& registry) const;

 private:
  // Per-entry metadata; LRU is per (set, partition) via a timestamp stamp.
  struct Entry {
    BufferId id = 0;
    Bytes bytes{0};  // valid payload bytes (for write-back accounting)
    bool expect_read = true;  // premature-eviction accounting applies
    std::uint64_t stamp = 0;  // higher = more recently used
    bool valid = false;
    bool dirty = false;
    bool read_since_fill = false;
    bool io_partition = false;
  };

  struct Set {
    std::vector<Entry> io_ways;   // DDIO partition
    std::vector<Entry> app_ways;  // regular partition
  };

  // The set index is a pure function of the id (Fibonacci hash), so there is
  // no id->set side table to maintain: lookup hashes straight to the set and
  // scans its <= `ways` entries. When the set count is a power of two (the
  // default config: 512 sets) the reduction is a mask instead of a divide.
  std::size_t set_of(BufferId id) const {
    const auto h = static_cast<std::size_t>((id * 0x9e3779b97f4a7c15ULL) >> 32);
    return set_mask_ != 0 ? (h & set_mask_) : h % sets_.size();
  }
  Entry* find(BufferId id);
  const Entry* find(BufferId id) const;
  Evicted fill(std::vector<Entry>& ways, BufferId id, Bytes size, bool io_partition, bool dirty,
               bool expect_read = true);

  LlcConfig config_;
  std::vector<Set> sets_;
  std::size_t set_mask_ = 0;  // sets-1 when the set count is a power of two, else 0
  // One-entry MRU lookup cache. Entry storage never moves after construction,
  // and find() re-validates (valid && id match) before trusting it, so stale
  // pointers are harmless and no explicit invalidation is needed.
  mutable BufferId last_id_ = 0;
  mutable Entry* last_entry_ = nullptr;
  std::uint64_t clock_ = 0;
  std::size_t ddio_resident_ = 0;
  std::size_t ddio_capacity_ = 0;
  LlcStats stats_;
};

}  // namespace ceio
