#include "host/dram.h"

#include <algorithm>

namespace ceio {

Nanos DramModel::access(Nanos now, Bytes size) {
  const Nanos start = std::max(now, next_free_);
  const Nanos xfer = transmit_time(size, config_.bandwidth);
  next_free_ = start + xfer;
  ++stats_.requests;
  stats_.bytes += size;
  stats_.busy_time += xfer;
  return start + xfer + config_.access_latency;
}

Nanos DramModel::peek_completion(Nanos now, Bytes size) const {
  const Nanos start = std::max(now, next_free_);
  return start + transmit_time(size, config_.bandwidth) + config_.access_latency;
}

}  // namespace ceio
