// CPU core model: a serial packet-processing engine with a cost model.
//
// The paper pins one core per I/O flow (§2.3); we mirror that. A core
// executes submitted work items strictly in order. Each item's service time
// is the framework's fixed per-packet cost, plus per-byte protocol cost, plus
// the *measured* memory latency of touching the packet buffer (LLC hit
// ~20 ns vs DRAM ~100 ns + bandwidth queueing) and of any application-level
// memcpy. This is where inefficient LLC use turns into lost throughput: a
// miss stretches the service time beyond the packet interarrival gap and the
// core falls behind the wire (paper §1: 41.8 ns budget at 200 Gbps/1024 B).
#pragma once

#include <cstdint>

#include "common/grow_ring.h"
#include "common/inline_function.h"
#include "common/units.h"
#include "host/memory_controller.h"
#include "sim/event_scheduler.h"

namespace ceio {

struct CpuCoreConfig {
  // Per-packet framework overhead (descriptor handling, ring management,
  // header parse). Roughly 60 ns ~= 170 cycles at 2.8 GHz.
  Nanos per_packet_cost{60};
  // Per-byte payload processing cost (checksum/parse); zero-copy frameworks
  // keep this tiny.
  double per_byte_cost_ns = 0.01;  // ns/B slope, not a Nanos (lint: allow-raw-unit-param)
};

/// One unit of CPU work: process one received packet buffer.
struct PacketWork {
  BufferId buffer = 0;
  Bytes size{0};
  /// Extra application-level cost (KV lookup, DFS logging, ...).
  Nanos app_cost{0};
  /// Touch the packet buffer through the cache hierarchy (hit/miss matters).
  bool read_buffer = true;
  /// When nonzero, memcpy the payload into this application buffer
  /// (non-zero-copy frameworks such as our LineFS substrate).
  BufferId copy_to = 0;
  /// Bulk copy job (message work): read `copy_src_count` consecutive
  /// buffers of `copy_block` bytes starting at `copy_src_begin` (cache
  /// residency decides hit vs DRAM per buffer) and stream `stream_bytes`
  /// to the destination with non-temporal stores.
  BufferId copy_src_begin = 0;
  std::uint32_t copy_src_count = 0;
  Bytes copy_block{0};
  Bytes stream_bytes{0};
  /// Fired at the simulated completion instant. Inline up to 48 bytes: the
  /// per-packet capture is {this, flow id, a 4-byte PacketRef, a pointer} —
  /// submitting work never heap-allocates in steady state.
  InlineFunction<void(Nanos done), 48> on_done;
};

struct CpuCoreStats {
  std::int64_t packets = 0;
  Nanos busy_time{0};
  Nanos mem_stall_time{0};  // portion of busy time spent waiting on memory
};

class CpuCore {
 public:
  CpuCore(EventScheduler& sched, MemoryController& mc, const CpuCoreConfig& config = {});

  /// Enqueues work; the core processes items serially in FIFO order.
  void submit(PacketWork work);

  bool idle() const { return !busy_ && queue_.empty(); }
  std::size_t backlog() const { return queue_.size(); }

  double utilization(Nanos elapsed) const {
    return elapsed > Nanos{0} ? static_cast<double>(stats_.busy_time) / static_cast<double>(elapsed)
                       : 0.0;
  }

  const CpuCoreStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CpuCoreStats{}; }

 private:
  void run_next();

  EventScheduler& sched_;
  MemoryController& mc_;
  CpuCoreConfig config_;
  GrowRing<PacketWork> queue_;
  /// Completion of the single in-flight item (the core is serial); parked
  /// here so the completion event's capture stays a bare `this`.
  InlineFunction<void(Nanos done), 48> current_done_;
  bool busy_ = false;
  CpuCoreStats stats_;
};

}  // namespace ceio
